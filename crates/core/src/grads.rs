//! Per-example gradient matrices in factored-friendly form.
//!
//! The paper's `grads` MCS method returns the list
//! `ψ_i = q(θ; x_i, y_i) + r(θ)` for every training example (§2.2).
//! ObservedFisher needs three operations on this list (§3.4, §4.3):
//!
//! 1. the `D x D` second moment `J = (1/n) Σ ψ ψᵀ` (when `D ≤ n`),
//! 2. the `n x n` Gram matrix `G_{ij} = ψ_i·ψ_j / n` (when `D > n`),
//! 3. transposed application `Q'ᵀ w = (1/√n) Σ w_i ψ_i` (factored
//!    sampling without ever materializing a `D`-sized basis).
//!
//! For sparse GLMs, `ψ_i = c_i·x_i + shift` where the shift `r(θ) = βθ`
//! is shared by all rows; [`Grads::Sparse`] keeps that structure so the
//! three operations stay `O(nnz)` instead of `O(n·D)`.

use blinkml_data::parallel::{
    par_map_reduce_matrix, par_ranges, par_rows_matrix, par_rows_matrix_with, par_sum_vecs,
};
use blinkml_data::{FeatureVec, SparseVec};
use blinkml_linalg::blas::{ger, par_gemm, par_gemm_tn, par_symmetric, par_syrk_n, par_syrk_t};
use blinkml_linalg::spectral::SymmetricOp;
use blinkml_linalg::vector::{axpy, dot};
use blinkml_linalg::Matrix;

/// The per-example gradient list in one of two layouts.
#[derive(Debug, Clone)]
pub enum Grads {
    /// Dense `n x D` row matrix of `ψ_i`.
    Dense(Matrix),
    /// Sparse rows plus a shared dense shift: `ψ_i = rows[i] + shift`.
    Sparse {
        /// Per-example sparse parts.
        rows: Vec<SparseVec>,
        /// Shared dense shift (`r(θ)`, usually `βθ`).
        shift: Vec<f64>,
    },
}

impl Grads {
    /// Number of examples `n`.
    pub fn num_rows(&self) -> usize {
        match self {
            Grads::Dense(m) => m.rows(),
            Grads::Sparse { rows, .. } => rows.len(),
        }
    }

    /// Parameter dimension `D`.
    pub fn dim(&self) -> usize {
        match self {
            Grads::Dense(m) => m.cols(),
            Grads::Sparse { shift, .. } => shift.len(),
        }
    }

    /// Second moment `J = (1/n) Σ ψ ψᵀ` as a dense `D x D` matrix,
    /// accumulated through the deterministic parallel kernels.
    ///
    /// Only sensible when `D` is small; the coordinator picks the Gram
    /// path otherwise.
    pub fn second_moment(&self) -> Matrix {
        let n = self.num_rows().max(1) as f64;
        match self {
            Grads::Dense(m) => {
                let mut j = par_syrk_t(m);
                j.scale(1.0 / n);
                j
            }
            Grads::Sparse { rows, shift } => {
                // With ψ_i = s_i + c (c = shift shared by all rows):
                // Σ ψψᵀ = Σ s_i s_iᵀ + t cᵀ + c tᵀ + n·c cᵀ, t = Σ s_i.
                // The sparse outer products cost O(nnz²) per row instead
                // of the O(D²) dense rank-one update per row.
                let d = shift.len();
                let mut j = par_map_reduce_matrix(rows.len(), d, d, |range| {
                    let mut acc = Matrix::zeros(d, d);
                    for row in &rows[range] {
                        let (idx, val) = (row.indices(), row.values());
                        for (p, &ip) in idx.iter().enumerate() {
                            let vp = val[p];
                            if vp == 0.0 {
                                continue;
                            }
                            let arow = acc.row_mut(ip as usize);
                            for (q, &iq) in idx.iter().enumerate() {
                                arow[iq as usize] += vp * val[q];
                            }
                        }
                    }
                    acc
                });
                let t = par_sum_vecs(rows.len(), d, |i, acc| rows[i].add_scaled_into(1.0, acc));
                ger(1.0, &t, shift, &mut j);
                ger(1.0, shift, &t, &mut j);
                ger(rows.len() as f64, shift, shift, &mut j);
                j.scale(1.0 / n);
                j
            }
        }
    }

    /// Gram matrix `G_{ij} = ψ_i·ψ_j / n` as a dense `n x n` matrix,
    /// computed row-chunk-parallel.
    pub fn gram(&self) -> Matrix {
        let n = self.num_rows();
        let scale = 1.0 / n.max(1) as f64;
        match self {
            Grads::Dense(m) => {
                let mut g = par_syrk_n(m);
                g.scale(scale);
                g
            }
            Grads::Sparse { rows, shift } => {
                // ψ_i·ψ_j = s_i·s_j + s_i·c + s_j·c + c·c with c = shift.
                let c_dot_c = dot(shift, shift);
                let s_dot_c: Vec<f64> = par_ranges(n, |range| {
                    range.map(|i| rows[i].dot(shift)).collect::<Vec<_>>()
                })
                .into_iter()
                .flatten()
                .collect();
                par_symmetric(n, |i, j| {
                    (sparse_dot(&rows[i], &rows[j]) + s_dot_c[i] + s_dot_c[j] + c_dot_c) * scale
                })
            }
        }
    }

    /// `Q'ᵀ w = (1/√n) Σ w_i ψ_i` — the transposed application used by
    /// the implicit covariance factor. The dense path is the `gemv_t`
    /// BLAS kernel.
    pub fn t_apply(&self, w: &[f64]) -> Vec<f64> {
        let n = self.num_rows();
        assert_eq!(w.len(), n, "t_apply: weight length mismatch");
        let inv_sqrt_n = 1.0 / (n.max(1) as f64).sqrt();
        let mut out = match self {
            Grads::Dense(m) => blinkml_linalg::blas::gemv_t(m, w).expect("checked length"),
            Grads::Sparse { rows, shift } => {
                let mut out = vec![0.0; self.dim()];
                let w_sum: f64 = w.iter().sum();
                for (row, &wi) in rows.iter().zip(w) {
                    if wi != 0.0 {
                        row.add_scaled_into(wi, &mut out);
                    }
                }
                for (o, &c) in out.iter_mut().zip(shift) {
                    *o += w_sum * c;
                }
                out
            }
        };
        for o in &mut out {
            *o *= inv_sqrt_n;
        }
        out
    }

    /// `Ψ B` — every gradient row dotted against a `D × k` block of
    /// column vectors, giving `n × k`. The dense layout is one blocked
    /// parallel GEMM; the sparse layout streams `O(nnz · k)` work plus a
    /// single shared `cᵀB` row for the shift.
    pub fn apply_block(&self, b: &Matrix) -> Matrix {
        assert_eq!(b.rows(), self.dim(), "apply_block: block row mismatch");
        let k = b.cols();
        match self {
            Grads::Dense(m) => par_gemm(m, b).expect("checked dims"),
            Grads::Sparse { rows, shift } => {
                // ψᵢ B = sᵢ B + cᵀB, with the shift term shared by all rows.
                let cb = blinkml_linalg::blas::gemv_t(b, shift).expect("checked dims");
                par_rows_matrix(rows.len(), k, |range, block| {
                    for (local, i) in range.enumerate() {
                        let out = &mut block[local * k..(local + 1) * k];
                        out.copy_from_slice(&cb);
                        let (idx, val) = (rows[i].indices(), rows[i].values());
                        for (&d, &v) in idx.iter().zip(val) {
                            if v != 0.0 {
                                axpy(v, b.row(d as usize), out);
                            }
                        }
                    }
                })
            }
        }
    }

    /// `Ψᵀ W` for an `n × k` block of weight columns, giving `D × k`
    /// (no `1/√n` scaling — this is the raw reduction the matrix-free
    /// spectral operators compose). Chunk-reduced in fixed order, so the
    /// result is machine- and thread-count-independent.
    pub fn t_apply_block(&self, w: &Matrix) -> Matrix {
        assert_eq!(w.rows(), self.num_rows(), "t_apply_block: row mismatch");
        let k = w.cols();
        let d = self.dim();
        match self {
            Grads::Dense(m) => par_gemm_tn(m, w).expect("checked dims"),
            Grads::Sparse { rows, shift } => {
                // Ψᵀ W = Σᵢ sᵢ ⊗ wᵢ + c ⊗ (1ᵀW).
                let mut out = par_map_reduce_matrix(rows.len(), d, k, |range| {
                    let mut partial = Matrix::zeros(d, k);
                    for i in range {
                        let (idx, val) = (rows[i].indices(), rows[i].values());
                        let wrow = w.row(i);
                        for (&di, &v) in idx.iter().zip(val) {
                            if v != 0.0 {
                                axpy(v, wrow, partial.row_mut(di as usize));
                            }
                        }
                    }
                    partial
                });
                let colsum = par_sum_vecs(rows.len(), k, |i, acc| axpy(1.0, w.row(i), acc));
                ger(1.0, shift, &colsum, &mut out);
                out
            }
        }
    }

    /// Batched transposed application: row `i` of the result is
    /// `t_apply` of row `i` of `w` (a `k × n` block of weight rows),
    /// giving `k × D` with the `1/√n` scaling applied.
    ///
    /// Each output row is **bitwise identical** to the corresponding
    /// [`Grads::t_apply`] call — the dense path is the same
    /// ascending-row accumulation as `gemv_t` fused into one blocked
    /// GEMM, and the sparse path replicates the per-draw loop — so the
    /// batched samplers can swap this in for per-draw application
    /// without changing a single float.
    pub fn t_apply_rows(&self, w: &Matrix) -> Matrix {
        let n = self.num_rows();
        assert_eq!(w.cols(), n, "t_apply_rows: weight length mismatch");
        let inv_sqrt_n = 1.0 / (n.max(1) as f64).sqrt();
        match self {
            Grads::Dense(m) => {
                let mut out = par_gemm(w, m).expect("checked dims");
                out.scale(inv_sqrt_n);
                out
            }
            Grads::Sparse { rows, shift } => {
                let d = self.dim();
                // Parallel over draws (rows of `w`, chunk size 1 — one
                // draw applies the whole factor); each draw repeats the
                // exact `t_apply` sequence, so rows match bitwise.
                par_rows_matrix_with(w.rows(), d, 1, |range, block| {
                    for (local, i) in range.enumerate() {
                        let wrow = w.row(i);
                        let out = &mut block[local * d..(local + 1) * d];
                        let w_sum: f64 = wrow.iter().sum();
                        for (row, &wi) in rows.iter().zip(wrow) {
                            if wi != 0.0 {
                                row.add_scaled_into(wi, out);
                            }
                        }
                        for (o, &c) in out.iter_mut().zip(shift) {
                            *o += w_sum * c;
                        }
                        for o in out.iter_mut() {
                            *o *= inv_sqrt_n;
                        }
                    }
                })
            }
        }
    }

    /// Matrix-free view of the second moment `J = (1/n) ΨᵀΨ` (`D × D`)
    /// for the truncated spectral engine (the `D ≤ n` regime).
    pub fn second_moment_op(&self) -> SecondMomentOp<'_> {
        SecondMomentOp { grads: self }
    }

    /// Matrix-free view of the Gram matrix `G = (1/n) ΨΨᵀ` (`n × n`)
    /// for the truncated spectral engine (the `D > n` regime).
    pub fn gram_op(&self) -> GramOp<'_> {
        GramOp { grads: self }
    }

    /// Materialize row `i` as a dense vector (testing utility).
    pub fn row_dense(&self, i: usize) -> Vec<f64> {
        match self {
            Grads::Dense(m) => m.row(i).to_vec(),
            Grads::Sparse { rows, shift } => {
                let mut out = shift.clone();
                rows[i].add_scaled_into(1.0, &mut out);
                out
            }
        }
    }

    /// Mean row `(1/n) Σ ψ_i` — equals the full objective gradient at the
    /// trained parameter, hence ≈ 0 at an optimum (useful invariant).
    /// Accumulates the rows directly (same ascending-row order as a
    /// unit-weight `t_apply`, without allocating the weight vector).
    pub fn mean_row(&self) -> Vec<f64> {
        let n = self.num_rows().max(1) as f64;
        let mut out = vec![0.0; self.dim()];
        match self {
            Grads::Dense(m) => {
                for i in 0..m.rows() {
                    for (o, &v) in out.iter_mut().zip(m.row(i)) {
                        *o += v;
                    }
                }
            }
            Grads::Sparse { rows, shift } => {
                for row in rows {
                    row.add_scaled_into(1.0, &mut out);
                }
                for (o, &c) in out.iter_mut().zip(shift) {
                    *o += rows.len() as f64 * c;
                }
            }
        }
        for o in &mut out {
            *o /= n;
        }
        out
    }
}

/// [`SymmetricOp`] over `J = (1/n) ΨᵀΨ` without materializing any
/// `D × D` matrix: one batched `Ψ B` pass followed by one batched
/// `Ψᵀ (·)` reduction — `O(n·D·k)` (dense) or `O(nnz·k)` (sparse) per
/// block apply.
#[derive(Debug, Clone, Copy)]
pub struct SecondMomentOp<'a> {
    grads: &'a Grads,
}

impl SymmetricOp for SecondMomentOp<'_> {
    fn dim(&self) -> usize {
        self.grads.dim()
    }

    fn apply(&self, block: &Matrix) -> Matrix {
        let y = self.grads.apply_block(block);
        let mut z = self.grads.t_apply_block(&y);
        z.scale(1.0 / self.grads.num_rows().max(1) as f64);
        z
    }
}

/// [`SymmetricOp`] over the Gram matrix `G = (1/n) ΨΨᵀ` without
/// materializing the `n × n` matrix: the same two batched passes as
/// [`SecondMomentOp`], composed in the opposite order.
#[derive(Debug, Clone, Copy)]
pub struct GramOp<'a> {
    grads: &'a Grads,
}

impl SymmetricOp for GramOp<'_> {
    fn dim(&self) -> usize {
        self.grads.num_rows()
    }

    fn apply(&self, block: &Matrix) -> Matrix {
        let y = self.grads.t_apply_block(block);
        let mut z = self.grads.apply_block(&y);
        z.scale(1.0 / self.grads.num_rows().max(1) as f64);
        z
    }
}

/// Merge-join dot product of two sorted sparse vectors.
fn sparse_dot(a: &SparseVec, b: &SparseVec) -> f64 {
    let (ai, av) = (a.indices(), a.values());
    let (bi, bv) = (b.indices(), b.values());
    let mut s = 0.0;
    let (mut p, mut q) = (0usize, 0usize);
    while p < ai.len() && q < bi.len() {
        match ai[p].cmp(&bi[q]) {
            std::cmp::Ordering::Less => p += 1,
            std::cmp::Ordering::Greater => q += 1,
            std::cmp::Ordering::Equal => {
                s += av[p] * bv[q];
                p += 1;
                q += 1;
            }
        }
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dense_example() -> Grads {
        Grads::Dense(Matrix::from_vec(3, 2, vec![1.0, 2.0, -1.0, 0.5, 3.0, -2.0]))
    }

    fn sparse_example() -> Grads {
        // Same matrix as dense_example minus a shift of (0.5, -0.5):
        // rows: (0.5, 2.5), (-1.5, 1.0), (2.5, -1.5)
        Grads::Sparse {
            rows: vec![
                SparseVec::new(2, vec![0, 1], vec![0.5, 2.5]),
                SparseVec::new(2, vec![0, 1], vec![-1.5, 1.0]),
                SparseVec::new(2, vec![0, 1], vec![2.5, -1.5]),
            ],
            shift: vec![0.5, -0.5],
        }
    }

    #[test]
    fn dims() {
        assert_eq!(dense_example().num_rows(), 3);
        assert_eq!(dense_example().dim(), 2);
        assert_eq!(sparse_example().num_rows(), 3);
        assert_eq!(sparse_example().dim(), 2);
    }

    #[test]
    fn sparse_rows_match_dense() {
        let d = dense_example();
        let s = sparse_example();
        for i in 0..3 {
            let rd = d.row_dense(i);
            let rs = s.row_dense(i);
            for (a, b) in rd.iter().zip(&rs) {
                assert!((a - b).abs() < 1e-12, "row {i}: {rd:?} vs {rs:?}");
            }
        }
    }

    #[test]
    fn second_moment_matches_between_layouts() {
        let jd = dense_example().second_moment();
        let js = sparse_example().second_moment();
        assert!(jd.max_abs_diff(&js) < 1e-12);
        // Hand check J[0][0] = (1 + 1 + 9)/3.
        assert!((jd[(0, 0)] - 11.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn gram_matches_between_layouts() {
        let gd = dense_example().gram();
        let gs = sparse_example().gram();
        assert!(gd.max_abs_diff(&gs) < 1e-12);
        // G[0][1] = (1·(−1) + 2·0.5)/3 = 0.
        assert!(gd[(0, 1)].abs() < 1e-12);
    }

    #[test]
    fn gram_and_second_moment_share_spectrum() {
        // Nonzero eigenvalues of J (D x D) and G (n x n) coincide.
        let g = dense_example().gram();
        let j = dense_example().second_moment();
        let eg = blinkml_linalg::SymmetricEigen::new(&g).unwrap();
        let ej = blinkml_linalg::SymmetricEigen::new(&j).unwrap();
        for k in 0..2 {
            assert!(
                (eg.eigenvalues[k] - ej.eigenvalues[k]).abs() < 1e-10,
                "eigenvalue {k}"
            );
        }
    }

    #[test]
    fn t_apply_matches_manual() {
        let d = dense_example();
        let w = [1.0, 0.0, -1.0];
        let got = d.t_apply(&w);
        // (1/√3)·(row0 − row2) = (1/√3)·(−2, 4)
        let s3 = 3.0f64.sqrt();
        assert!((got[0] + 2.0 / s3).abs() < 1e-12);
        assert!((got[1] - 4.0 / s3).abs() < 1e-12);

        let s = sparse_example();
        let got_s = s.t_apply(&w);
        for (a, b) in got.iter().zip(&got_s) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn mean_row_is_average() {
        let d = dense_example();
        let m = d.mean_row();
        assert!((m[0] - 1.0).abs() < 1e-12); // (1 − 1 + 3)/3
        assert!((m[1] - 1.0 / 6.0).abs() < 1e-12); // (2 + 0.5 − 2)/3
    }

    #[test]
    fn apply_block_matches_per_row_dots() {
        let b = Matrix::from_vec(2, 3, vec![0.5, -1.0, 2.0, 1.5, 0.25, -0.75]);
        for g in [dense_example(), sparse_example()] {
            let out = g.apply_block(&b);
            assert_eq!(out.shape(), (3, 3));
            for i in 0..3 {
                let psi = g.row_dense(i);
                for j in 0..3 {
                    let expect: f64 = psi.iter().enumerate().map(|(p, v)| v * b[(p, j)]).sum();
                    assert!((out[(i, j)] - expect).abs() < 1e-12, "({i},{j})");
                }
            }
        }
    }

    #[test]
    fn t_apply_block_matches_column_t_apply() {
        let w = Matrix::from_vec(3, 2, vec![1.0, 0.5, -2.0, 0.0, 0.25, 3.0]);
        for g in [dense_example(), sparse_example()] {
            let out = g.t_apply_block(&w);
            assert_eq!(out.shape(), (2, 2));
            let sqrt_n = 3.0f64.sqrt();
            for j in 0..2 {
                // t_apply carries the 1/√n factor; the raw block does not.
                let col = g.t_apply(&w.col(j));
                for i in 0..2 {
                    assert!(
                        (out[(i, j)] - col[i] * sqrt_n).abs() < 1e-12,
                        "col {j} row {i}"
                    );
                }
            }
        }
    }

    #[test]
    fn t_apply_rows_is_bitwise_per_draw() {
        let w = Matrix::from_vec(2, 3, vec![0.3, -1.2, 0.8, 0.0, 2.0, -0.5]);
        for g in [dense_example(), sparse_example()] {
            let out = g.t_apply_rows(&w);
            for i in 0..2 {
                assert_eq!(out.row(i), g.t_apply(w.row(i)).as_slice(), "draw {i}");
            }
        }
    }

    #[test]
    fn spectral_ops_match_materialized_matrices() {
        for g in [dense_example(), sparse_example()] {
            let j = g.second_moment();
            let gram = g.gram();
            let block = Matrix::from_vec(2, 2, vec![1.0, 0.0, -0.5, 2.0]);
            let jb = g.second_moment_op().apply(&block);
            let jb_direct = blinkml_linalg::blas::gemm(&j, &block).unwrap();
            assert!(jb.max_abs_diff(&jb_direct) < 1e-12);

            let block_n = Matrix::from_vec(3, 2, vec![1.0, 0.5, -1.0, 0.0, 0.25, 2.0]);
            let gb = g.gram_op().apply(&block_n);
            let gb_direct = blinkml_linalg::blas::gemm(&gram, &block_n).unwrap();
            assert!(gb.max_abs_diff(&gb_direct) < 1e-12);
        }
    }

    #[test]
    fn sparse_dot_disjoint_and_overlapping() {
        let a = SparseVec::new(6, vec![0, 2], vec![1.0, 2.0]);
        let b = SparseVec::new(6, vec![1, 3], vec![5.0, 5.0]);
        assert_eq!(sparse_dot(&a, &b), 0.0);
        let c = SparseVec::new(6, vec![2, 3], vec![4.0, 1.0]);
        assert_eq!(sparse_dot(&a, &c), 8.0);
    }
}
