//! Probabilistic principal component analysis (Tipping & Bishop 1999).
//!
//! The model: `x ~ N(0, C)` with `C = WWᵀ + σ²I`, `W ∈ R^{d×q}`.
//! The parameter vector BlinkML sees is `θ = [vec(W) (column-major), σ²]`
//! — `σ²` is a bona-fide MLE parameter, so the generic machinery
//! (ObservedFisher, accuracy estimation, sample-size search) applies
//! unchanged.
//!
//! Training uses the exact closed form: the top-`q` eigenpairs of the
//! (uncentered, per the paper's Appendix A footnote) second-moment
//! matrix `S = (1/n) Σ x xᵀ`, with `σ²` the mean of the discarded
//! eigenvalues and `W = U_q (Λ_q − σ²I)^{1/2}`. Column signs are
//! normalized so independently trained models are comparable; see
//! [`align_ppca_parameters`] for the residual order/sign ambiguity.

use crate::error::CoreError;
use crate::grads::Grads;
use crate::mcs::{ModelClassSpec, TrainedModel};
use blinkml_data::{Dataset, DatasetMatrix, FeatureVec, MatrixView, TrainScratch};
use blinkml_linalg::{blas, vector, Cholesky, Matrix, SymmetricEigen};
use blinkml_optim::OptimOptions;

/// PPCA model-class specification with `q` factors.
#[derive(Debug, Clone)]
pub struct PpcaSpec {
    num_factors: usize,
}

impl PpcaSpec {
    /// Spec extracting `q` factors (the paper's experiments use q = 10).
    ///
    /// # Panics
    /// Panics for `q = 0`.
    pub fn new(num_factors: usize) -> Self {
        assert!(num_factors > 0, "PPCA needs at least one factor");
        PpcaSpec { num_factors }
    }

    /// Number of factors `q`.
    pub fn num_factors(&self) -> usize {
        self.num_factors
    }

    /// Split `θ` into the loading matrix `W` (d×q, column-major) and
    /// `σ²`.
    fn unpack(&self, theta: &[f64], d: usize) -> (Matrix, f64) {
        let q = self.num_factors;
        assert_eq!(theta.len(), d * q + 1, "PPCA parameter length mismatch");
        let mut w = Matrix::zeros(d, q);
        for j in 0..q {
            for i in 0..d {
                w[(i, j)] = theta[j * d + i];
            }
        }
        let sigma2 = theta[d * q];
        (w, sigma2)
    }

    /// `C = WWᵀ + σ²I` and its Cholesky factorization.
    fn covariance(&self, w: &Matrix, sigma2: f64) -> Result<(Matrix, Cholesky), CoreError> {
        let mut c = blas::gemm_nt(w, w)?;
        c.add_diag(sigma2.max(1e-12));
        let chol = Cholesky::new(&c)?;
        Ok((c, chol))
    }

    /// Uncentered second-moment matrix `S = (1/n) Σ x xᵀ`, accumulated
    /// through the chunk-reduced weighted-Gram kernel (half the flops of
    /// the dense rank-one updates this used to perform per example, and
    /// contiguous reads from the materialized block).
    fn second_moment(xm: &MatrixView) -> Matrix {
        let n = xm.len().max(1) as f64;
        let w = vec![1.0 / n; xm.len()];
        xm.weighted_gram(&w)
    }

    /// Shared factor state of the batched objective/grads passes.
    fn factors(&self, theta: &[f64], d: usize) -> (Matrix, Matrix, f64, f64) {
        let (w, sigma2) = self.unpack(theta, d);
        let (_, chol) = self
            .covariance(&w, sigma2)
            .expect("PPCA covariance must be SPD for positive σ²");
        let c_inv = chol.inverse().expect("inverse after successful Cholesky");
        let m = blas::gemm(&c_inv, &w).expect("dims");
        let log_det = chol.log_det();
        let tr_cinv = c_inv.trace();
        (c_inv, m, tr_cinv, log_det)
    }

    /// Fill the column-major `aᵢ = C⁻¹xᵢ` block (`acols[j·n + i]`) with
    /// one batched margin pass per output row of `C⁻¹` — each entry is
    /// the same per-row dot the scalar `gemv` performs, so the dense
    /// path is bit-identical.
    fn fill_acols(xm: &MatrixView, c_inv: &Matrix, acols: &mut [f64]) {
        let rows = xm.len();
        for j in 0..xm.dim() {
            xm.margins_into(c_inv.row(j), 0.0, &mut acols[j * rows..(j + 1) * rows]);
        }
    }

    /// Dense view of row `i` of the block: a borrowed slice for dense
    /// blocks, a scatter into `buf` for CSR (`0 + v` per stored entry —
    /// the exact op sequence of the scalar `add_scaled_into(1.0, …)`
    /// materialization, keeping the sparse path bitwise).
    fn row_dense<'a>(xm: &'a MatrixView<'_>, i: usize, buf: &'a mut [f64]) -> &'a [f64] {
        match xm.dense_row(i) {
            Some(x) => x,
            None => {
                buf.iter_mut().for_each(|v| *v = 0.0);
                let (idx, val) = xm.sparse_row(i).expect("sparse block");
                for (&j, &v) in idx.iter().zip(val) {
                    buf[j as usize] += v;
                }
                buf
            }
        }
    }
}

impl<F: FeatureVec> ModelClassSpec<F> for PpcaSpec {
    fn name(&self) -> &'static str {
        "ppca"
    }

    fn param_dim(&self, data_dim: usize) -> usize {
        data_dim * self.num_factors + 1
    }

    fn regularization(&self) -> f64 {
        0.0
    }

    fn label_domain(&self) -> blinkml_data::LabelDomain {
        blinkml_data::LabelDomain::Unused
    }

    fn objective(&self, theta: &[f64], data: &Dataset<F>) -> (f64, Vec<f64>) {
        let d = data.dim();
        let q = self.num_factors;
        let n = data.len().max(1) as f64;
        let (w, sigma2) = self.unpack(theta, d);
        let (_, chol) = self
            .covariance(&w, sigma2)
            .expect("PPCA covariance must be SPD for positive σ²");
        let c_inv = chol.inverse().expect("inverse after successful Cholesky");
        // M = C⁻¹W (d×q), tr(C⁻¹) for the σ² gradient.
        let m = blas::gemm(&c_inv, &w).expect("dims");
        let tr_cinv = c_inv.trace();
        let log_det = chol.log_det();
        let const_term = d as f64 * (2.0 * std::f64::consts::PI).ln();

        let mut value = 0.0;
        let mut grad = vec![0.0; d * q + 1];
        let mut xd = vec![0.0; d];
        for e in data.iter() {
            xd.iter_mut().for_each(|v| *v = 0.0);
            e.x.add_scaled_into(1.0, &mut xd);
            let a = blas::gemv(&c_inv, &xd).expect("dims"); // a = C⁻¹x
            let quad = blinkml_linalg::vector::dot(&xd, &a);
            value += 0.5 * (const_term + log_det + quad);
            // ∂f_i/∂W = M − a bᵀ with b = Mᵀx.
            let b = blas::gemv_t(&m, &xd).expect("dims");
            for j in 0..q {
                let bj = b[j];
                for i in 0..d {
                    grad[j * d + i] += m[(i, j)] - a[i] * bj;
                }
            }
            // ∂f_i/∂σ² = ½(tr C⁻¹ − ‖a‖²).
            let a_sq: f64 = a.iter().map(|v| v * v).sum();
            grad[d * q] += 0.5 * (tr_cinv - a_sq);
        }
        value /= n;
        for g in &mut grad {
            *g /= n;
        }
        (value, grad)
    }

    fn grads(&self, theta: &[f64], data: &Dataset<F>) -> Grads {
        let d = data.dim();
        let q = self.num_factors;
        let dim = d * q + 1;
        let (w, sigma2) = self.unpack(theta, d);
        let (_, chol) = self
            .covariance(&w, sigma2)
            .expect("PPCA covariance must be SPD for positive σ²");
        let c_inv = chol.inverse().expect("inverse after successful Cholesky");
        let m = blas::gemm(&c_inv, &w).expect("dims");
        let tr_cinv = c_inv.trace();

        let mut rows = Matrix::zeros(data.len(), dim);
        let mut xd = vec![0.0; d];
        for (idx, e) in data.iter().enumerate() {
            xd.iter_mut().for_each(|v| *v = 0.0);
            e.x.add_scaled_into(1.0, &mut xd);
            let a = blas::gemv(&c_inv, &xd).expect("dims");
            let b = blas::gemv_t(&m, &xd).expect("dims");
            let row = rows.row_mut(idx);
            for j in 0..q {
                let bj = b[j];
                for i in 0..d {
                    row[j * d + i] = m[(i, j)] - a[i] * bj;
                }
            }
            let a_sq: f64 = a.iter().map(|v| v * v).sum();
            row[d * q] = 0.5 * (tr_cinv - a_sq);
        }
        Grads::Dense(rows)
    }

    fn grads_cached(&self, theta: &[f64], data: &Dataset<F>, xm: Option<&MatrixView>) -> Grads {
        // The column-batched aᵢ pass below is bit-identical to the
        // scalar gemv only over dense blocks; sparse features take the
        // scalar path (margins over stored entries would reorder the
        // per-row reduction), materializing a gathered view's sample
        // first so the walk sees the sample, not the pool.
        let Some(xm) = xm.filter(|xm| !xm.is_sparse()) else {
            let owned;
            let data = match xm.and_then(|v| v.sample_of()) {
                Some(idx) => {
                    owned = data.subset(idx);
                    &owned
                }
                None => data,
            };
            return self.grads(theta, data);
        };
        debug_assert_eq!(xm.dim(), data.dim(), "cached matrix dim mismatch");
        let d = xm.dim();
        let q = self.num_factors;
        let dim = d * q + 1;
        let n_rows = xm.len();
        let (c_inv, m, tr_cinv, _) = self.factors(theta, d);
        // The O(n·d²) bottleneck — aᵢ = C⁻¹xᵢ for every row — as d
        // batched margin passes over the contiguous block.
        let mut acols = vec![0.0; d * n_rows];
        Self::fill_acols(xm, &c_inv, &mut acols);
        let mut rows = Matrix::zeros(n_rows, dim);
        let mut a = vec![0.0; d];
        let mut xbuf = vec![0.0; d];
        for idx in 0..n_rows {
            for (j, aj) in a.iter_mut().enumerate() {
                *aj = acols[j * n_rows + idx];
            }
            let xd = Self::row_dense(xm, idx, &mut xbuf);
            let b = blas::gemv_t(&m, xd).expect("dims");
            let row = rows.row_mut(idx);
            for j in 0..q {
                let bj = b[j];
                for i in 0..d {
                    row[j * d + i] = m[(i, j)] - a[i] * bj;
                }
            }
            let a_sq: f64 = a.iter().map(|v| v * v).sum();
            row[d * q] = 0.5 * (tr_cinv - a_sq);
        }
        Grads::Dense(rows)
    }

    fn batched_training(&self) -> bool {
        // Training itself is closed-form (see `train_with_matrix`), but
        // advertising the batched path makes the coordinator materialize
        // and cache the design matrix for the statistics phase.
        true
    }

    fn value_grad_batched(
        &self,
        theta: &[f64],
        xm: &MatrixView,
        scratch: &mut TrainScratch,
        grad: &mut [f64],
    ) -> f64 {
        let d = xm.dim();
        let q = self.num_factors;
        debug_assert_eq!(theta.len(), d * q + 1);
        debug_assert_eq!(grad.len(), d * q + 1);
        let n_rows = xm.len();
        let n = n_rows.max(1) as f64;
        let (c_inv, m, tr_cinv, log_det) = self.factors(theta, d);
        let const_term = d as f64 * (2.0 * std::f64::consts::PI).ln();
        // Dense blocks batch the O(n·d²) aᵢ = C⁻¹xᵢ pass into column
        // sweeps (bit-identical per-row dots); sparse blocks keep the
        // scalar per-row gemv so the reduction order matches exactly.
        let acols = if xm.is_sparse() {
            &mut [][..]
        } else {
            &mut scratch.slot(0, d * n_rows)[..]
        };
        if !xm.is_sparse() {
            Self::fill_acols(xm, &c_inv, acols);
        }
        let mut value = 0.0;
        grad.iter_mut().for_each(|g| *g = 0.0);
        let mut a = vec![0.0; d];
        let mut xbuf = vec![0.0; d];
        for idx in 0..n_rows {
            let xd = Self::row_dense(xm, idx, &mut xbuf);
            if xm.is_sparse() {
                a.copy_from_slice(&blas::gemv(&c_inv, xd).expect("dims"));
            } else {
                for (j, aj) in a.iter_mut().enumerate() {
                    *aj = acols[j * n_rows + idx];
                }
            }
            let quad = vector::dot(xd, &a);
            value += 0.5 * (const_term + log_det + quad);
            // ∂f_i/∂W = M − a bᵀ with b = Mᵀx.
            let b = blas::gemv_t(&m, xd).expect("dims");
            for j in 0..q {
                let bj = b[j];
                for i in 0..d {
                    grad[j * d + i] += m[(i, j)] - a[i] * bj;
                }
            }
            // ∂f_i/∂σ² = ½(tr C⁻¹ − ‖a‖²).
            let a_sq: f64 = a.iter().map(|v| v * v).sum();
            grad[d * q] += 0.5 * (tr_cinv - a_sq);
        }
        value /= n;
        for g in grad.iter_mut() {
            *g /= n;
        }
        value
    }

    fn predict(&self, theta: &[f64], x: &F) -> f64 {
        // The "prediction" of PPCA for difference purposes is parameter-
        // based (Appendix C); as a convenience, predict returns the
        // squared norm of the latent projection Wᵀx.
        let d = x.dim();
        let (w, _) = self.unpack(theta, d);
        let mut xd = vec![0.0; d];
        x.add_scaled_into(1.0, &mut xd);
        let z = blas::gemv_t(&w, &xd).expect("dims");
        z.iter().map(|v| v * v).sum()
    }

    fn diff(&self, theta_a: &[f64], theta_b: &[f64], _holdout: &Dataset<F>) -> f64 {
        // v = 1 − cosine(θ_a, θ_b) over the loading block (Appendix C).
        let wa = &theta_a[..theta_a.len() - 1];
        let wb = &theta_b[..theta_b.len() - 1];
        1.0 - blinkml_linalg::vector::cosine_similarity(wa, wb)
    }

    fn generalization_error(&self, theta: &[f64], data: &Dataset<F>) -> f64 {
        // Average negative log-likelihood serves as the generalization
        // metric for the unsupervised model.
        self.objective(theta, data).0
    }

    fn train_with_matrix(
        &self,
        data: &Dataset<F>,
        xm: Option<&MatrixView>,
        _warm_start: Option<&[f64]>,
        _options: &OptimOptions,
    ) -> Result<TrainedModel, CoreError> {
        let d = data.dim();
        let q = self.num_factors;
        if q >= d {
            return Err(CoreError::InvalidConfig(format!(
                "PPCA needs q < d (got q = {q}, d = {d})"
            )));
        }
        let owned;
        let xm = match xm {
            Some(v) => *v,
            None => {
                owned = DatasetMatrix::from_dataset(data);
                owned.view()
            }
        };
        let xm = &xm;
        if xm.len() < 2 {
            return Err(CoreError::InvalidData(
                "PPCA needs at least 2 examples".into(),
            ));
        }
        let s = Self::second_moment(xm);
        let eig = SymmetricEigen::new(&s)?;
        // σ² = mean of the discarded spectrum, floored for stability.
        let tail: f64 = eig.eigenvalues[q..].iter().sum();
        let sigma2 = (tail / (d - q) as f64).max(1e-9);
        let mut theta = vec![0.0; d * q + 1];
        for j in 0..q {
            let scale = (eig.eigenvalues[j] - sigma2).max(0.0).sqrt();
            // Deterministic sign: make the largest-|entry| coordinate
            // positive so closed-form solutions are comparable.
            let col = eig.eigenvectors.col(j);
            let lead = col
                .iter()
                .cloned()
                .fold(0.0f64, |m, v| if v.abs() > m.abs() { v } else { m });
            let sign = if lead < 0.0 { -1.0 } else { 1.0 };
            for i in 0..d {
                theta[j * d + i] = sign * scale * col[i];
            }
        }
        theta[d * q] = sigma2;
        let value = self.objective_value_view(&theta, xm);
        Ok(TrainedModel::new(theta, xm.len(), 0, true, value))
    }
}

impl PpcaSpec {
    /// The averaged negative log-likelihood over the view's rows —
    /// bit-identical to `objective(θ, sample).0` on the (conceptually
    /// materialized) sample: the same per-row `a = C⁻¹x`, `xᵀa` ops in
    /// the same sequential accumulation order, without forming the
    /// gradient. Used to record the closed-form training's objective
    /// value without touching the example list.
    fn objective_value_view(&self, theta: &[f64], xm: &MatrixView) -> f64 {
        let d = xm.dim();
        let n = xm.len().max(1) as f64;
        let (w, sigma2) = self.unpack(theta, d);
        let (_, chol) = self
            .covariance(&w, sigma2)
            .expect("PPCA covariance must be SPD for positive σ²");
        let c_inv = chol.inverse().expect("inverse after successful Cholesky");
        let log_det = chol.log_det();
        let const_term = d as f64 * (2.0 * std::f64::consts::PI).ln();
        let mut value = 0.0;
        let mut xbuf = vec![0.0; d];
        for i in 0..xm.len() {
            let xd = Self::row_dense(xm, i, &mut xbuf);
            let a = blas::gemv(&c_inv, xd).expect("dims");
            let quad = vector::dot(xd, &a);
            value += 0.5 * (const_term + log_det + quad);
        }
        value / n
    }
}

/// Resolve PPCA's residual column-order and sign ambiguity: permute and
/// sign-flip `other`'s factor columns to best match `reference` (greedy
/// by |cosine|). Both vectors must be `d·q + 1` parameter vectors laid
/// out like [`PpcaSpec`]'s.
///
/// Needed only when comparing two *independently trained* models (e.g.
/// an approximate model against a trained full model); the within-run
/// accuracy estimates never retrain, so they are unaffected.
pub fn align_ppca_parameters(reference: &[f64], other: &[f64], d: usize, q: usize) -> Vec<f64> {
    assert_eq!(reference.len(), d * q + 1, "reference layout mismatch");
    assert_eq!(other.len(), d * q + 1, "other layout mismatch");
    let col = |v: &[f64], j: usize| v[j * d..(j + 1) * d].to_vec();
    let mut used = vec![false; q];
    let mut aligned = vec![0.0; d * q + 1];
    for j in 0..q {
        let r = col(reference, j);
        let mut best = None;
        let mut best_cos = -1.0;
        for (c, _) in used.iter().enumerate().filter(|(_, &u)| !u) {
            let o = col(other, c);
            let cos = blinkml_linalg::vector::cosine_similarity(&r, &o).abs();
            if cos > best_cos {
                best_cos = cos;
                best = Some(c);
            }
        }
        let c = best.expect("q columns available");
        used[c] = true;
        let o = col(other, c);
        let sign = if blinkml_linalg::vector::dot(&r, &o) < 0.0 {
            -1.0
        } else {
            1.0
        };
        for i in 0..d {
            aligned[j * d + i] = sign * o[i];
        }
    }
    aligned[d * q] = other[d * q];
    aligned
}

#[cfg(test)]
mod tests {
    use super::*;
    use blinkml_data::generators::low_rank_gaussian;
    use blinkml_data::DenseVec;

    fn spec() -> PpcaSpec {
        PpcaSpec::new(3)
    }

    #[test]
    fn train_recovers_low_rank_structure() {
        let data = low_rank_gaussian(5_000, 10, 3, 0.1, 1);
        let model = <PpcaSpec as ModelClassSpec<DenseVec>>::train(
            &spec(),
            &data,
            None,
            &OptimOptions::default(),
        )
        .unwrap();
        let theta = model.parameters();
        let sigma2 = theta[30];
        // The noise floor must be near 0.1² = 0.01.
        assert!((0.005..0.02).contains(&sigma2), "σ² = {sigma2}");
        // Loadings should carry much more energy than the noise floor.
        let w_norm: f64 = theta[..30].iter().map(|v| v * v).sum();
        assert!(w_norm > 1.0, "‖W‖² = {w_norm}");
    }

    #[test]
    fn gradient_vanishes_at_closed_form_solution() {
        let data = low_rank_gaussian(2_000, 8, 3, 0.2, 2);
        let model = <PpcaSpec as ModelClassSpec<DenseVec>>::train(
            &spec(),
            &data,
            None,
            &OptimOptions::default(),
        )
        .unwrap();
        let (_, grad) =
            <PpcaSpec as ModelClassSpec<DenseVec>>::objective(&spec(), model.parameters(), &data);
        let gnorm = blinkml_linalg::vector::norm_inf(&grad);
        assert!(gnorm < 1e-6, "gradient at the MLE: {gnorm}");
    }

    #[test]
    fn objective_gradient_matches_finite_differences() {
        let data = low_rank_gaussian(200, 5, 2, 0.3, 3);
        let sp = PpcaSpec::new(2);
        // A generic (non-optimal) parameter point.
        let mut theta: Vec<f64> = (0..11).map(|i| 0.2 + 0.05 * i as f64).collect();
        theta[10] = 0.5; // σ²
        let (_, grad) = <PpcaSpec as ModelClassSpec<DenseVec>>::objective(&sp, &theta, &data);
        let eps = 1e-6;
        for i in 0..theta.len() {
            let mut plus = theta.clone();
            let mut minus = theta.clone();
            plus[i] += eps;
            minus[i] -= eps;
            let (fp, _) = <PpcaSpec as ModelClassSpec<DenseVec>>::objective(&sp, &plus, &data);
            let (fm, _) = <PpcaSpec as ModelClassSpec<DenseVec>>::objective(&sp, &minus, &data);
            let fd = (fp - fm) / (2.0 * eps);
            assert!(
                (grad[i] - fd).abs() < 1e-4 * (1.0 + fd.abs()),
                "coord {i}: {} vs {fd}",
                grad[i]
            );
        }
    }

    #[test]
    fn grads_mean_equals_objective_gradient() {
        let data = low_rank_gaussian(300, 5, 2, 0.3, 4);
        let sp = PpcaSpec::new(2);
        let mut theta: Vec<f64> = (0..11).map(|i| 0.1 * ((i * 3) % 7) as f64 + 0.1).collect();
        theta[10] = 0.4;
        let (_, grad) = <PpcaSpec as ModelClassSpec<DenseVec>>::objective(&sp, &theta, &data);
        let mean = <PpcaSpec as ModelClassSpec<DenseVec>>::grads(&sp, &theta, &data).mean_row();
        for (g, m) in grad.iter().zip(&mean) {
            assert!((g - m).abs() < 1e-10, "{g} vs {m}");
        }
    }

    #[test]
    fn diff_is_one_minus_cosine() {
        let sp = PpcaSpec::new(1);
        let holdout = low_rank_gaussian(10, 3, 1, 0.1, 5);
        let a = vec![1.0, 0.0, 0.0, 0.1];
        let b = vec![0.0, 1.0, 0.0, 0.1];
        let v = <PpcaSpec as ModelClassSpec<DenseVec>>::diff(&sp, &a, &b, &holdout);
        assert!((v - 1.0).abs() < 1e-12, "orthogonal loadings: v = {v}");
        let v_same = <PpcaSpec as ModelClassSpec<DenseVec>>::diff(&sp, &a, &a, &holdout);
        assert!(v_same.abs() < 1e-12);
    }

    #[test]
    fn two_trainings_on_same_data_agree() {
        let data = low_rank_gaussian(1_000, 8, 3, 0.2, 6);
        let sp = spec();
        let opts = OptimOptions::default();
        let m1 = <PpcaSpec as ModelClassSpec<DenseVec>>::train(&sp, &data, None, &opts).unwrap();
        let m2 = <PpcaSpec as ModelClassSpec<DenseVec>>::train(&sp, &data, None, &opts).unwrap();
        let v = <PpcaSpec as ModelClassSpec<DenseVec>>::diff(
            &sp,
            m1.parameters(),
            m2.parameters(),
            &data,
        );
        assert!(v.abs() < 1e-12, "deterministic training: v = {v}");
    }

    #[test]
    fn alignment_fixes_column_permutation_and_sign() {
        let d = 4;
        let q = 2;
        let reference: Vec<f64> = vec![1.0, 0.0, 0.0, 0.0, /* col2 */ 0.0, 1.0, 0.0, 0.0, 0.3];
        // other = reference with columns swapped and first column negated.
        let other: Vec<f64> = vec![0.0, 1.0, 0.0, 0.0, /* col2 */ -1.0, 0.0, 0.0, 0.0, 0.3];
        let aligned = align_ppca_parameters(&reference, &other, d, q);
        for (a, r) in aligned.iter().zip(&reference) {
            assert!((a - r).abs() < 1e-12, "{aligned:?}");
        }
    }

    #[test]
    fn rejects_q_not_less_than_d() {
        let data = low_rank_gaussian(100, 3, 2, 0.1, 7);
        let sp = PpcaSpec::new(3);
        assert!(<PpcaSpec as ModelClassSpec<DenseVec>>::train(
            &sp,
            &data,
            None,
            &OptimOptions::default()
        )
        .is_err());
    }
}
