//! The model classes shipped with BlinkML.
//!
//! The paper supports four classes — linear regression, logistic
//! regression, max-entropy (softmax) classification, and PPCA — and
//! names Poisson regression as a supported GLM; all five are implemented
//! here. The three single-output GLMs share the [`glm`] machinery; the
//! max-entropy classifier generalizes it to per-class blocks; PPCA is a
//! closed-form MLE with its own gradient structure.

pub mod glm;
pub mod linreg;
pub mod logreg;
pub mod maxent;
pub mod poisson;
pub mod ppca;

pub use linreg::LinearRegressionSpec;
pub use logreg::LogisticRegressionSpec;
pub use maxent::MaxEntSpec;
pub use poisson::PoissonRegressionSpec;
pub use ppca::PpcaSpec;
