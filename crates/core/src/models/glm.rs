//! Shared machinery for single-output generalized linear models.
//!
//! Linear, logistic, and Poisson regression all fit the pattern
//! `f_n(θ) = (1/n) Σ ℓ(θᵀx_i, y_i) + (β/2)‖θ‖²`: the per-example
//! gradient is `ℓ'(m_i, y_i)·x_i + βθ` and the closed-form Hessian is
//! `(1/n) Xᵀ diag(ℓ'') X + βI`. A [`GlmFamily`] supplies the three
//! scalar functions; [`GlmSpec`] turns any family into a full
//! [`ModelClassSpec`].
//!
//! # Intercept
//!
//! [`GlmSpec::with_intercept`] appends an **unpenalized** bias as the
//! last parameter: margins become `θ_wᵀx + θ_b`, and the regularizer
//! `(β/2)‖θ_w‖²` covers the weights only. The objective, `grads`, and
//! the closed-form Hessian all skip the intercept consistently (the
//! gradient of an unpenalized coordinate must carry no `βθ` shift, or
//! the ObservedFisher statistics silently disagree with the optimizer).
//!
//! # Batched path
//!
//! [`ModelClassSpec::value_grad_batched`] evaluates the same objective
//! against a cached design-matrix view (full or pool-gathered
//! [`MatrixView`]): one fused margin pass
//! (`m = X·θ_w + θ_b`), one vectorized [`GlmFamily::loss_dloss`] sweep
//! over the margin block, and one chunk-reduced `Xᵀw` gradient pass.
//! Every reduction keeps the scalar path's chunk boundaries and
//! accumulation order, so the batched value and gradient are
//! **bit-identical** to [`ModelClassSpec::objective`] at any thread
//! budget.

use crate::grads::Grads;
use crate::mcs::{classification_diff, regression_diff, ModelClassSpec, SweepEval};
use blinkml_data::parallel::{par_ranges, par_sum_vecs};
use blinkml_data::{Dataset, FeatureVec, FoldRequest, MatrixView, SparseVec, TrainScratch};
use blinkml_linalg::Matrix;
use std::marker::PhantomData;

/// The scalar loss family of a single-output GLM.
pub trait GlmFamily: Send + Sync + 'static {
    /// Model-class name for reports.
    const NAME: &'static str;

    /// Whether the prediction difference is RMS-based (regression) or a
    /// disagreement rate (classification).
    const RMS_DIFF: bool;

    /// Per-example negative log-likelihood `ℓ(m, y)` at margin
    /// `m = θᵀx` (up to a `θ`-independent constant).
    fn loss(m: f64, y: f64) -> f64;

    /// `∂ℓ/∂m`.
    fn dloss(m: f64, y: f64) -> f64;

    /// Fused `(ℓ, ∂ℓ/∂m)` evaluation — the batched objective's inner
    /// kernel. The default calls [`Self::loss`] and [`Self::dloss`]
    /// separately; families whose loss and derivative share an `exp`
    /// (logistic, Poisson) override it with a shared-transcendental
    /// version that must return **bit-identical** values to the
    /// separate calls.
    fn loss_dloss(m: f64, y: f64) -> (f64, f64) {
        (Self::loss(m, y), Self::dloss(m, y))
    }

    /// `∂²ℓ/∂m²` when available in closed form (enables the ClosedForm
    /// statistics method).
    fn d2loss(m: f64, y: f64) -> Option<f64>;

    /// Prediction as a function of the margin.
    fn predict(m: f64) -> f64;

    /// Generalization error of one prediction against the true label:
    /// 0/1 loss for classifiers, squared error for regressors.
    fn example_error(m: f64, y: f64) -> f64;

    /// Label domain the ingest gate enforces for this family; defaults
    /// to any finite real (regression families).
    fn label_domain() -> blinkml_data::LabelDomain {
        blinkml_data::LabelDomain::AnyFinite
    }
}

/// A complete model-class specification built from a [`GlmFamily`].
#[derive(Debug, Clone)]
pub struct GlmSpec<Fam: GlmFamily> {
    beta: f64,
    intercept: bool,
    _family: PhantomData<Fam>,
}

impl<Fam: GlmFamily> GlmSpec<Fam> {
    /// Spec with L2-regularization coefficient `beta` (the paper uses
    /// `β = 0.001` throughout its experiments) and no intercept.
    pub fn new(beta: f64) -> Self {
        assert!(beta >= 0.0, "regularization must be nonnegative");
        GlmSpec {
            beta,
            intercept: false,
            _family: PhantomData,
        }
    }

    /// Spec with an **unpenalized** intercept appended as the last
    /// parameter: margins are `θ_wᵀx + θ_b` and the regularizer skips
    /// `θ_b` in the objective, gradient, `grads`, and Hessian alike.
    pub fn with_intercept(beta: f64) -> Self {
        assert!(beta >= 0.0, "regularization must be nonnegative");
        GlmSpec {
            beta,
            intercept: true,
            _family: PhantomData,
        }
    }

    /// Whether this spec carries an intercept parameter.
    pub fn has_intercept(&self) -> bool {
        self.intercept
    }

    /// The margin `θ_wᵀx (+ θ_b)` of one example.
    fn margin<F: FeatureVec>(&self, theta: &[f64], x: &F) -> f64 {
        if self.intercept {
            let d = theta.len() - 1;
            x.dot(&theta[..d]) + theta[d]
        } else {
            x.dot(theta)
        }
    }

    /// Number of penalized (weight) parameters for dimension `dim`.
    fn weight_len(&self, dim: usize) -> usize {
        if self.intercept {
            dim - 1
        } else {
            dim
        }
    }
}

impl<Fam: GlmFamily, F: FeatureVec> ModelClassSpec<F> for GlmSpec<Fam> {
    fn name(&self) -> &'static str {
        Fam::NAME
    }

    fn param_dim(&self, data_dim: usize) -> usize {
        data_dim + usize::from(self.intercept)
    }

    fn regularization(&self) -> f64 {
        self.beta
    }

    fn label_domain(&self) -> blinkml_data::LabelDomain {
        Fam::label_domain()
    }

    fn objective(&self, theta: &[f64], data: &Dataset<F>) -> (f64, Vec<f64>) {
        let d = data.dim();
        let dim = theta.len();
        let n = data.len().max(1) as f64;
        // Accumulate [Σℓ, Σℓ'·x (, Σℓ')] in one parallel pass; slot 0 is
        // the loss, slots 1..=d the weight gradient, the last slot (when
        // an intercept is present) the bias gradient.
        let acc = par_sum_vecs(data.len(), dim + 1, |i, acc| {
            let e = data.get(i);
            let m = self.margin(theta, &e.x);
            acc[0] += Fam::loss(m, e.y);
            let c = Fam::dloss(m, e.y);
            e.x.add_scaled_into(c, &mut acc[1..=d]);
            if self.intercept {
                acc[1 + d] += c;
            }
        });
        let mut value = acc[0] / n;
        let mut grad: Vec<f64> = acc[1..].iter().map(|v| v / n).collect();
        if self.beta > 0.0 {
            // The regularizer covers the weights only: the intercept is
            // skipped here exactly as it is in `grads`' shift.
            let wlen = self.weight_len(dim);
            let norm_sq: f64 = theta[..wlen].iter().map(|t| t * t).sum();
            value += 0.5 * self.beta * norm_sq;
            for (g, t) in grad[..wlen].iter_mut().zip(&theta[..wlen]) {
                *g += self.beta * t;
            }
        }
        (value, grad)
    }

    fn batched_training(&self) -> bool {
        true
    }

    fn value_grad_batched(
        &self,
        theta: &[f64],
        xm: &MatrixView,
        scratch: &mut TrainScratch,
        grad: &mut [f64],
    ) -> f64 {
        let d = xm.dim();
        let dim = theta.len();
        debug_assert_eq!(dim, d + usize::from(self.intercept));
        debug_assert_eq!(grad.len(), dim);
        let n = xm.len().max(1) as f64;
        let (w, b) = if self.intercept {
            (&theta[..d], theta[d])
        } else {
            (theta, 0.0)
        };
        // One fused sweep: chunk margins → loss/derivative (sharing the
        // family's transcendentals) → chunk gradient partial, with each
        // chunk's rows reused while cache-hot. Partial sums merge in the
        // scalar path's par_sum_vecs order, so value and gradient are
        // bit-identical to `objective` on the sample the view selects.
        let mut dloss_sum = 0.0;
        let loss = xm.value_grad_fold(w, b, &mut grad[..d], scratch, |start, margins| {
            let (mut lpart, mut cpart) = (0.0, 0.0);
            for (local, m) in margins.iter_mut().enumerate() {
                let (l, c) = Fam::loss_dloss(*m, xm.label(start + local));
                lpart += l;
                cpart += c;
                *m = c;
            }
            dloss_sum += cpart;
            lpart
        });
        let mut value = loss / n;
        for g in grad[..d].iter_mut() {
            *g /= n;
        }
        if self.intercept {
            grad[d] = dloss_sum / n;
        }
        if self.beta > 0.0 {
            let wlen = self.weight_len(dim);
            let norm_sq: f64 = theta[..wlen].iter().map(|t| t * t).sum();
            value += 0.5 * self.beta * norm_sq;
            for (g, t) in grad[..wlen].iter_mut().zip(&theta[..wlen]) {
                *g += self.beta * t;
            }
        }
        value
    }

    fn multi_lambda_batched(&self) -> bool {
        true
    }

    fn value_grad_batched_multi(
        &self,
        evals: &mut [SweepEval],
        xm: &MatrixView,
        scratch: &mut TrainScratch,
    ) {
        let d = xm.dim();
        let intercept = self.intercept;
        let dim = d + usize::from(intercept);
        // One fused multi-request sweep over the shared capture: every
        // grid point's weight-block fold runs chunk by chunk while the
        // rows are hot; the λ-dependent regularizer terms are applied
        // per-eval afterwards, so the data passes are shared across the
        // whole grid. Request k's (loss, dloss-sum, grad) come out
        // bit-identical to `value_grad_fold` over `xm.prefix(rows_k)`,
        // which is what makes each eval below bit-identical to
        // `value_grad_batched` on a `with_regularization(β_k)` spec.
        let mut reqs: Vec<FoldRequest> = evals
            .iter_mut()
            .map(|e| {
                debug_assert_eq!(e.theta.len(), dim);
                debug_assert_eq!(e.grad.len(), dim);
                let (w, b) = if intercept {
                    (&e.theta[..d], e.theta[d])
                } else {
                    (e.theta, 0.0)
                };
                FoldRequest::new(w, b, e.rows, &mut e.grad[..d])
            })
            .collect();
        xm.value_grad_fold_multi(&mut reqs, scratch, |_k, start, margins| {
            let (mut lpart, mut cpart) = (0.0, 0.0);
            for (local, m) in margins.iter_mut().enumerate() {
                let (l, c) = Fam::loss_dloss(*m, xm.label(start + local));
                lpart += l;
                cpart += c;
                *m = c;
            }
            (lpart, cpart)
        });
        let results: Vec<(f64, f64)> = reqs.iter().map(|r| (r.loss, r.extra)).collect();
        drop(reqs);
        for (e, (loss, dloss_sum)) in evals.iter_mut().zip(results) {
            let n = e.rows.max(1) as f64;
            let mut value = loss / n;
            for g in e.grad[..d].iter_mut() {
                *g /= n;
            }
            if intercept {
                e.grad[d] = dloss_sum / n;
            }
            if e.beta > 0.0 {
                let wlen = self.weight_len(dim);
                let norm_sq: f64 = e.theta[..wlen].iter().map(|t| t * t).sum();
                value += 0.5 * e.beta * norm_sq;
                for (g, t) in e.grad[..wlen].iter_mut().zip(&e.theta[..wlen]) {
                    *g += e.beta * t;
                }
            }
            e.value = value;
        }
    }

    fn with_regularization(&self, beta: f64) -> Option<Box<dyn ModelClassSpec<F>>> {
        assert!(beta >= 0.0, "regularization must be nonnegative");
        Some(Box::new(GlmSpec::<Fam> {
            beta,
            intercept: self.intercept,
            _family: PhantomData,
        }))
    }

    fn grads(&self, theta: &[f64], data: &Dataset<F>) -> Grads {
        let d = data.dim();
        let dim = theta.len();
        let mut shift: Vec<f64> = theta.iter().map(|t| self.beta * t).collect();
        if self.intercept {
            // Unpenalized intercept: no βθ shift on the bias slot.
            shift[d] = 0.0;
        }
        if F::IS_SPARSE {
            let rows: Vec<_> = par_ranges(data.len(), |range| {
                range
                    .map(|i| {
                        let e = data.get(i);
                        let c = Fam::dloss(self.margin(theta, &e.x), e.y);
                        sparse_grad_row(&e.x, c, d, dim, self.intercept)
                    })
                    .collect::<Vec<_>>()
            })
            .into_iter()
            .flatten()
            .collect();
            Grads::Sparse { rows, shift }
        } else {
            let mut m = Matrix::zeros(data.len(), dim);
            for (i, e) in data.iter().enumerate() {
                let c = Fam::dloss(self.margin(theta, &e.x), e.y);
                let row = m.row_mut(i);
                row.copy_from_slice(&shift);
                e.x.add_scaled_into(c, &mut row[..d]);
                if self.intercept {
                    row[d] += c;
                }
            }
            Grads::Dense(m)
        }
    }

    fn grads_cached(&self, theta: &[f64], data: &Dataset<F>, xm: Option<&MatrixView>) -> Grads {
        let Some(xm) = xm else {
            return self.grads(theta, data);
        };
        debug_assert_eq!(xm.dim(), data.dim(), "cached matrix dim mismatch");
        let d = xm.dim();
        let dim = theta.len();
        let rows_n = xm.len();
        let (w, b) = if self.intercept {
            (&theta[..d], theta[d])
        } else {
            (theta, 0.0)
        };
        // One batched margin pass replaces the per-example dots; the
        // per-row fill then reads the contiguous block.
        let mut margins = vec![0.0; rows_n];
        xm.margins_into(w, b, &mut margins);
        let mut shift: Vec<f64> = theta.iter().map(|t| self.beta * t).collect();
        if self.intercept {
            shift[d] = 0.0;
        }
        if xm.is_sparse() {
            let rows: Vec<_> = par_ranges(rows_n, |range| {
                range
                    .map(|i| {
                        let c = Fam::dloss(margins[i], xm.label(i));
                        let (idx, val) = xm.sparse_row(i).expect("sparse block");
                        let mut indices: Vec<u32> = idx.to_vec();
                        let mut values: Vec<f64> = val.iter().map(|v| c * v).collect();
                        if self.intercept {
                            indices.push(d as u32);
                            values.push(c);
                        }
                        SparseVec::new(dim, indices, values)
                    })
                    .collect::<Vec<_>>()
            })
            .into_iter()
            .flatten()
            .collect();
            Grads::Sparse { rows, shift }
        } else {
            let mut m = Matrix::zeros(rows_n, dim);
            for (i, &margin) in margins.iter().enumerate() {
                let c = Fam::dloss(margin, xm.label(i));
                let row = m.row_mut(i);
                row.copy_from_slice(&shift);
                let xrow = xm.dense_row(i).expect("dense block");
                for (rj, &xj) in row[..d].iter_mut().zip(xrow) {
                    *rj += c * xj;
                }
                if self.intercept {
                    row[d] += c;
                }
            }
            Grads::Dense(m)
        }
    }

    fn closed_form_hessian(&self, theta: &[f64], data: &Dataset<F>) -> Option<Matrix> {
        self.closed_form_hessian_cached(theta, data, None)
    }

    fn closed_form_hessian_cached(
        &self,
        theta: &[f64],
        data: &Dataset<F>,
        xm: Option<&MatrixView>,
    ) -> Option<Matrix> {
        let d = data.dim();
        let dim = theta.len();
        let rows_n = xm.map_or(data.len(), |v| v.len());
        let n = rows_n.max(1) as f64;
        // Curvature weights w_i = ℓ''(m_i, y_i)/n; any example without a
        // closed form disables the method.
        let mut weights = vec![0.0; rows_n];
        match xm {
            Some(xm) => {
                debug_assert_eq!(xm.dim(), data.dim(), "cached matrix dim mismatch");
                let (w, b) = if self.intercept {
                    (&theta[..d], theta[d])
                } else {
                    (theta, 0.0)
                };
                let mut margins = vec![0.0; xm.len()];
                xm.margins_into(w, b, &mut margins);
                for (i, (wi, &m)) in weights.iter_mut().zip(&margins).enumerate() {
                    *wi = Fam::d2loss(m, xm.label(i))? / n;
                }
            }
            None => {
                for (wi, e) in weights.iter_mut().zip(data.iter()) {
                    *wi = Fam::d2loss(self.margin(theta, &e.x), e.y)? / n;
                }
            }
        }
        // H_ww = Σ wᵢ·xᵢxᵢᵀ through the chunk-reduced Gram kernel (one
        // symmetric half instead of the dense rank-one updates).
        let owned;
        let xm = match xm {
            Some(v) => *v,
            None => {
                owned = blinkml_data::DatasetMatrix::from_dataset(data);
                owned.view()
            }
        };
        let ww = xm.weighted_gram(&weights);
        let mut h = Matrix::zeros(dim, dim);
        for a in 0..d {
            h.row_mut(a)[..d].copy_from_slice(&ww.row(a)[..d]);
        }
        if self.intercept {
            // Border terms of the augmented design [x; 1].
            let mut border = vec![0.0; d];
            xm.weighted_sum_into(&weights, &mut border);
            for (j, &v) in border.iter().enumerate() {
                h[(j, d)] = v;
                h[(d, j)] = v;
            }
            h[(d, d)] = weights.iter().sum();
        }
        // β on the penalized diagonal only — consistent with the
        // objective and grads skipping the intercept.
        for i in 0..self.weight_len(dim) {
            h[(i, i)] += self.beta;
        }
        Some(h)
    }

    fn predict(&self, theta: &[f64], x: &F) -> f64 {
        Fam::predict(self.margin(theta, x))
    }

    fn diff(&self, theta_a: &[f64], theta_b: &[f64], holdout: &Dataset<F>) -> f64 {
        if Fam::RMS_DIFF {
            regression_diff(
                |x: &F| Fam::predict(self.margin(theta_a, x)),
                |x: &F| Fam::predict(self.margin(theta_b, x)),
                holdout,
            )
        } else {
            classification_diff(
                |x: &F| Fam::predict(self.margin(theta_a, x)),
                |x: &F| Fam::predict(self.margin(theta_b, x)),
                holdout,
            )
        }
    }

    fn generalization_error(&self, theta: &[f64], data: &Dataset<F>) -> f64 {
        if data.is_empty() {
            return 0.0;
        }
        let total: f64 = data
            .iter()
            .map(|e| Fam::example_error(self.margin(theta, &e.x), e.y))
            .sum();
        let mean = total / data.len() as f64;
        if Fam::RMS_DIFF {
            mean.sqrt()
        } else {
            mean
        }
    }

    fn num_margin_outputs(&self, _data_dim: usize) -> Option<usize> {
        Some(1)
    }

    fn margins(&self, theta: &[f64], x: &F, out: &mut [f64]) {
        out[0] = self.margin(theta, x);
    }

    fn margin_weights(&self, theta: &[f64], data_dim: usize) -> Option<Matrix> {
        if self.intercept {
            // Affine margins (`xᵀw + b`) are outside the pure-linear
            // pool-GEMM contract; the diff engine falls back to the
            // per-example margins path, which includes the bias.
            return None;
        }
        debug_assert_eq!(theta.len(), data_dim);
        Some(Matrix::from_vec(data_dim, 1, theta.to_vec()))
    }

    fn predict_from_margins(&self, scores: &[f64]) -> f64 {
        Fam::predict(scores[0])
    }

    fn diff_is_rms(&self) -> bool {
        Fam::RMS_DIFF
    }
}

/// One sparse `grads` row `c·x` (plus the intercept slot when present)
/// embedded in dimension `dim`.
fn sparse_grad_row<F: FeatureVec>(
    x: &F,
    c: f64,
    d: usize,
    dim: usize,
    intercept: bool,
) -> SparseVec {
    if !intercept {
        return x.scaled_sparse(c, dim, 0);
    }
    let block = x.scaled_sparse(c, d, 0);
    let mut indices: Vec<u32> = block.indices().to_vec();
    let mut values: Vec<f64> = block.values().to_vec();
    indices.push(d as u32);
    values.push(c);
    SparseVec::new(dim, indices, values)
}

#[cfg(test)]
pub(crate) mod test_support {
    use super::*;
    use blinkml_data::Dataset;

    /// Finite-difference check of `objective`'s gradient for any spec —
    /// the load-bearing invariant for every model class.
    pub fn check_gradient<F: FeatureVec, S: ModelClassSpec<F>>(
        spec: &S,
        theta: &[f64],
        data: &Dataset<F>,
        tol: f64,
    ) {
        let (_, grad) = spec.objective(theta, data);
        let eps = 1e-6;
        for i in 0..theta.len() {
            let mut plus = theta.to_vec();
            let mut minus = theta.to_vec();
            plus[i] += eps;
            minus[i] -= eps;
            let (fp, _) = spec.objective(&plus, data);
            let (fm, _) = spec.objective(&minus, data);
            let fd = (fp - fm) / (2.0 * eps);
            assert!(
                (grad[i] - fd).abs() < tol * (1.0 + fd.abs()),
                "gradient coord {i}: analytic {} vs finite-diff {fd}",
                grad[i]
            );
        }
    }

    /// Check that the mean grads row equals the objective gradient —
    /// the consistency contract between `grads` and `objective`.
    pub fn check_grads_mean<F: FeatureVec, S: ModelClassSpec<F>>(
        spec: &S,
        theta: &[f64],
        data: &Dataset<F>,
        tol: f64,
    ) {
        let (_, grad) = spec.objective(theta, data);
        let mean = spec.grads(theta, data).mean_row();
        for (g, m) in grad.iter().zip(&mean) {
            assert!((g - m).abs() < tol, "grads mean mismatch: {g} vs {m}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::logreg::LogisticFamily;
    use blinkml_data::generators::synthetic_logistic;
    use blinkml_data::DenseVec;
    use blinkml_optim::OptimOptions;
    use test_support::{check_gradient, check_grads_mean};

    type Spec = GlmSpec<LogisticFamily>;

    #[test]
    fn intercept_extends_param_dim_and_margin() {
        let spec = Spec::with_intercept(1e-3);
        assert!(spec.has_intercept());
        assert_eq!(<Spec as ModelClassSpec<DenseVec>>::param_dim(&spec, 4), 5);
        let x = DenseVec::new(vec![1.0, 2.0]);
        let theta = vec![0.5, -1.0, 0.25];
        // margin = 0.5 − 2.0 + 0.25
        assert_eq!(spec.margin(&theta, &x), 0.5 - 2.0 + 0.25);
    }

    #[test]
    fn intercept_gradient_matches_finite_differences() {
        let (data, _) = synthetic_logistic(250, 4, 2.0, 11);
        let spec = Spec::with_intercept(1e-2);
        let theta = vec![0.3, -0.2, 0.5, 0.1, -0.4];
        check_gradient(&spec, &theta, &data, 1e-5);
        check_grads_mean(&spec, &theta, &data, 1e-10);
    }

    #[test]
    fn regularizer_skips_the_intercept_consistently() {
        // The objective's penalty and grads' shift must agree on the
        // unpenalized bias: both skip it.
        let (data, _) = synthetic_logistic(100, 3, 2.0, 12);
        let spec = Spec::with_intercept(0.5);
        let theta = vec![1.0, -2.0, 0.5, 3.0];
        let (v_reg, g_reg) = spec.objective(&theta, &data);
        let free = Spec::with_intercept(0.0);
        let (v0, g0) = free.objective(&theta, &data);
        // Value penalty covers the weights only: ½β‖w‖², not the bias.
        let expect = 0.5 * 0.5 * (1.0 + 4.0 + 0.25);
        assert!((v_reg - v0 - expect).abs() < 1e-12);
        // Bias gradient unchanged by β; weight gradients shifted by βθ.
        assert!((g_reg[3] - g0[3]).abs() < 1e-15);
        for j in 0..3 {
            assert!((g_reg[j] - g0[j] - 0.5 * theta[j]).abs() < 1e-12);
        }
        // grads' shift agrees: mean row == objective gradient.
        check_grads_mean(&spec, &theta, &data, 1e-10);
    }

    #[test]
    fn intercept_hessian_matches_numeric_jacobian() {
        let (data, _) = synthetic_logistic(300, 3, 1.5, 13);
        let spec = Spec::with_intercept(0.01);
        let theta = vec![0.2, -0.4, 0.6, 0.3];
        let h = spec.closed_form_hessian(&theta, &data).unwrap();
        let eps = 1e-6;
        for i in 0..4 {
            let mut plus = theta.clone();
            let mut minus = theta.clone();
            plus[i] += eps;
            minus[i] -= eps;
            let (_, gp) = spec.objective(&plus, &data);
            let (_, gm) = spec.objective(&minus, &data);
            for j in 0..4 {
                let fd = (gp[j] - gm[j]) / (2.0 * eps);
                assert!(
                    (h[(j, i)] - fd).abs() < 1e-5,
                    "H[{j}][{i}]: {} vs {fd}",
                    h[(j, i)]
                );
            }
        }
    }

    #[test]
    fn intercept_improves_fit_on_shifted_data() {
        // Shift every margin by a constant: without an intercept the
        // classifier must waste weight mass; with one it recovers.
        let (base, _) = synthetic_logistic(4_000, 3, 2.0, 14);
        let shifted = Dataset::new(
            "shifted",
            3,
            base.iter()
                .map(|e| blinkml_data::Example {
                    x: e.x.clone(),
                    y: if e.x.as_slice().iter().sum::<f64>() + 1.5 > 0.0 {
                        1.0
                    } else {
                        0.0
                    },
                })
                .collect(),
        );
        let opts = OptimOptions::default();
        let plain = Spec::new(1e-3).train(&shifted, None, &opts).unwrap();
        let with_b = Spec::with_intercept(1e-3)
            .train(&shifted, None, &opts)
            .unwrap();
        let e_plain = Spec::new(1e-3).generalization_error(plain.parameters(), &shifted);
        let e_b = Spec::with_intercept(1e-3).generalization_error(with_b.parameters(), &shifted);
        assert!(
            e_b < e_plain,
            "intercept should help on shifted labels: {e_b} vs {e_plain}"
        );
    }

    /// The fused multi-λ kernel must equal K independent
    /// `value_grad_batched` calls on `with_regularization(β_k)` specs
    /// over the matching sample prefixes — bit for bit, with and
    /// without an intercept, at thread budgets {1, 4}.
    #[test]
    fn multi_lambda_batched_is_bitwise_looped_single_lambda() {
        use blinkml_data::parallel::{set_max_threads, CHUNK_SIZE};
        use blinkml_data::DatasetMatrix;
        let n = CHUNK_SIZE + 257;
        let (data, _) = synthetic_logistic(n, 4, 2.0, 21);
        let betas = [0.0, 1e-3, 0.1];
        let rows = [n, CHUNK_SIZE / 2, n - 7];
        for intercept in [false, true] {
            let spec = if intercept {
                Spec::with_intercept(1e-3)
            } else {
                Spec::new(1e-3)
            };
            assert!(<Spec as ModelClassSpec<DenseVec>>::multi_lambda_batched(
                &spec
            ));
            let dim = <Spec as ModelClassSpec<DenseVec>>::param_dim(&spec, 4);
            let thetas: Vec<Vec<f64>> = (0..betas.len())
                .map(|k| {
                    (0..dim)
                        .map(|j| 0.1 * (j as f64 + 1.0) - 0.07 * k as f64)
                        .collect()
                })
                .collect();
            for budget in [Some(1), Some(4)] {
                set_max_threads(budget);
                let pool = DatasetMatrix::from_dataset(&data);
                let view = pool.view();
                let mut grads = vec![vec![f64::NAN; dim]; betas.len()];
                let mut evals: Vec<SweepEval> = thetas
                    .iter()
                    .zip(betas.iter())
                    .zip(rows.iter())
                    .zip(grads.iter_mut())
                    .map(|(((t, &b), &r), g)| SweepEval::new(t, b, r, g))
                    .collect();
                let mut scratch = TrainScratch::new();
                <Spec as ModelClassSpec<DenseVec>>::value_grad_batched_multi(
                    &spec,
                    &mut evals,
                    &view,
                    &mut scratch,
                );
                let values: Vec<f64> = evals.iter().map(|e| e.value).collect();
                drop(evals);
                for k in 0..betas.len() {
                    let solo =
                        <Spec as ModelClassSpec<DenseVec>>::with_regularization(&spec, betas[k])
                            .unwrap();
                    let sub = view.prefix(rows[k]);
                    let mut solo_grad = vec![f64::NAN; dim];
                    let mut solo_scratch = TrainScratch::new();
                    let solo_value = solo.value_grad_batched(
                        &thetas[k],
                        &sub,
                        &mut solo_scratch,
                        &mut solo_grad,
                    );
                    assert_eq!(
                        values[k].to_bits(),
                        solo_value.to_bits(),
                        "value k={k} intercept={intercept} budget {budget:?}"
                    );
                    for (j, (a, b)) in grads[k].iter().zip(&solo_grad).enumerate() {
                        assert_eq!(
                            a.to_bits(),
                            b.to_bits(),
                            "grad[{j}] k={k} intercept={intercept} budget {budget:?}"
                        );
                    }
                }
            }
            set_max_threads(None);
        }
    }

    #[test]
    fn margin_weights_disabled_with_intercept() {
        let spec = Spec::with_intercept(1e-3);
        assert!(
            <Spec as ModelClassSpec<DenseVec>>::margin_weights(&spec, &[0.1, 0.2, 0.3], 2)
                .is_none()
        );
        let plain = Spec::new(1e-3);
        assert!(
            <Spec as ModelClassSpec<DenseVec>>::margin_weights(&plain, &[0.1, 0.2], 2).is_some()
        );
    }
}
