//! Shared machinery for single-output generalized linear models.
//!
//! Linear, logistic, and Poisson regression all fit the pattern
//! `f_n(θ) = (1/n) Σ ℓ(θᵀx_i, y_i) + (β/2)‖θ‖²`: the per-example
//! gradient is `ℓ'(m_i, y_i)·x_i + βθ` and the closed-form Hessian is
//! `(1/n) Xᵀ diag(ℓ'') X + βI`. A [`GlmFamily`] supplies the three
//! scalar functions; [`GlmSpec`] turns any family into a full
//! [`ModelClassSpec`].

use crate::grads::Grads;
use crate::mcs::{classification_diff, regression_diff, ModelClassSpec};
use blinkml_data::parallel::{par_ranges, par_sum_vecs};
use blinkml_data::{Dataset, FeatureVec};
use blinkml_linalg::Matrix;
use std::marker::PhantomData;

/// The scalar loss family of a single-output GLM.
pub trait GlmFamily: Send + Sync + 'static {
    /// Model-class name for reports.
    const NAME: &'static str;

    /// Whether the prediction difference is RMS-based (regression) or a
    /// disagreement rate (classification).
    const RMS_DIFF: bool;

    /// Per-example negative log-likelihood `ℓ(m, y)` at margin
    /// `m = θᵀx` (up to a `θ`-independent constant).
    fn loss(m: f64, y: f64) -> f64;

    /// `∂ℓ/∂m`.
    fn dloss(m: f64, y: f64) -> f64;

    /// `∂²ℓ/∂m²` when available in closed form (enables the ClosedForm
    /// statistics method).
    fn d2loss(m: f64, y: f64) -> Option<f64>;

    /// Prediction as a function of the margin.
    fn predict(m: f64) -> f64;

    /// Generalization error of one prediction against the true label:
    /// 0/1 loss for classifiers, squared error for regressors.
    fn example_error(m: f64, y: f64) -> f64;
}

/// A complete model-class specification built from a [`GlmFamily`].
#[derive(Debug, Clone)]
pub struct GlmSpec<Fam: GlmFamily> {
    beta: f64,
    _family: PhantomData<Fam>,
}

impl<Fam: GlmFamily> GlmSpec<Fam> {
    /// Spec with L2-regularization coefficient `beta` (the paper uses
    /// `β = 0.001` throughout its experiments).
    pub fn new(beta: f64) -> Self {
        assert!(beta >= 0.0, "regularization must be nonnegative");
        GlmSpec {
            beta,
            _family: PhantomData,
        }
    }
}

impl<Fam: GlmFamily, F: FeatureVec> ModelClassSpec<F> for GlmSpec<Fam> {
    fn name(&self) -> &'static str {
        Fam::NAME
    }

    fn param_dim(&self, data_dim: usize) -> usize {
        data_dim
    }

    fn regularization(&self) -> f64 {
        self.beta
    }

    fn objective(&self, theta: &[f64], data: &Dataset<F>) -> (f64, Vec<f64>) {
        let d = data.dim();
        let n = data.len().max(1) as f64;
        // Accumulate [Σℓ, Σℓ'·x] in one parallel pass; slot 0 is the
        // loss, slots 1..=d the gradient.
        let acc = par_sum_vecs(data.len(), d + 1, |i, acc| {
            let e = data.get(i);
            let m = e.x.dot(theta);
            acc[0] += Fam::loss(m, e.y);
            e.x.add_scaled_into(Fam::dloss(m, e.y), &mut acc[1..]);
        });
        let mut value = acc[0] / n;
        let mut grad: Vec<f64> = acc[1..].iter().map(|v| v / n).collect();
        if self.beta > 0.0 {
            let norm_sq: f64 = theta.iter().map(|t| t * t).sum();
            value += 0.5 * self.beta * norm_sq;
            for (g, t) in grad.iter_mut().zip(theta) {
                *g += self.beta * t;
            }
        }
        (value, grad)
    }

    fn grads(&self, theta: &[f64], data: &Dataset<F>) -> Grads {
        let d = data.dim();
        let shift: Vec<f64> = theta.iter().map(|t| self.beta * t).collect();
        if F::IS_SPARSE {
            let rows: Vec<_> = par_ranges(data.len(), |range| {
                range
                    .map(|i| {
                        let e = data.get(i);
                        let c = Fam::dloss(e.x.dot(theta), e.y);
                        e.x.scaled_sparse(c, d, 0)
                    })
                    .collect::<Vec<_>>()
            })
            .into_iter()
            .flatten()
            .collect();
            Grads::Sparse { rows, shift }
        } else {
            let mut m = Matrix::zeros(data.len(), d);
            for (i, e) in data.iter().enumerate() {
                let c = Fam::dloss(e.x.dot(theta), e.y);
                let row = m.row_mut(i);
                row.copy_from_slice(&shift);
                e.x.add_scaled_into(c, row);
            }
            Grads::Dense(m)
        }
    }

    fn closed_form_hessian(&self, theta: &[f64], data: &Dataset<F>) -> Option<Matrix> {
        let d = data.dim();
        let n = data.len().max(1) as f64;
        let mut h = Matrix::zeros(d, d);
        let mut xi = vec![0.0; d];
        for e in data.iter() {
            let m = e.x.dot(theta);
            let w = Fam::d2loss(m, e.y)?;
            if w == 0.0 {
                continue;
            }
            // H += (w/n)·x xᵀ.
            xi.iter_mut().for_each(|v| *v = 0.0);
            e.x.add_scaled_into(1.0, &mut xi);
            blinkml_linalg::blas::ger(w / n, &xi, &xi, &mut h);
        }
        h.add_diag(self.beta);
        Some(h)
    }

    fn predict(&self, theta: &[f64], x: &F) -> f64 {
        Fam::predict(x.dot(theta))
    }

    fn diff(&self, theta_a: &[f64], theta_b: &[f64], holdout: &Dataset<F>) -> f64 {
        if Fam::RMS_DIFF {
            regression_diff(
                |x: &F| Fam::predict(x.dot(theta_a)),
                |x: &F| Fam::predict(x.dot(theta_b)),
                holdout,
            )
        } else {
            classification_diff(
                |x: &F| Fam::predict(x.dot(theta_a)),
                |x: &F| Fam::predict(x.dot(theta_b)),
                holdout,
            )
        }
    }

    fn generalization_error(&self, theta: &[f64], data: &Dataset<F>) -> f64 {
        if data.is_empty() {
            return 0.0;
        }
        let total: f64 = data
            .iter()
            .map(|e| Fam::example_error(e.x.dot(theta), e.y))
            .sum();
        let mean = total / data.len() as f64;
        if Fam::RMS_DIFF {
            mean.sqrt()
        } else {
            mean
        }
    }

    fn num_margin_outputs(&self, _data_dim: usize) -> Option<usize> {
        Some(1)
    }

    fn margins(&self, theta: &[f64], x: &F, out: &mut [f64]) {
        out[0] = x.dot(theta);
    }

    fn margin_weights(&self, theta: &[f64], data_dim: usize) -> Option<Matrix> {
        debug_assert_eq!(theta.len(), data_dim);
        Some(Matrix::from_vec(data_dim, 1, theta.to_vec()))
    }

    fn predict_from_margins(&self, scores: &[f64]) -> f64 {
        Fam::predict(scores[0])
    }

    fn diff_is_rms(&self) -> bool {
        Fam::RMS_DIFF
    }
}

#[cfg(test)]
pub(crate) mod test_support {
    use super::*;
    use blinkml_data::Dataset;

    /// Finite-difference check of `objective`'s gradient for any spec —
    /// the load-bearing invariant for every model class.
    pub fn check_gradient<F: FeatureVec, S: ModelClassSpec<F>>(
        spec: &S,
        theta: &[f64],
        data: &Dataset<F>,
        tol: f64,
    ) {
        let (_, grad) = spec.objective(theta, data);
        let eps = 1e-6;
        for i in 0..theta.len() {
            let mut plus = theta.to_vec();
            let mut minus = theta.to_vec();
            plus[i] += eps;
            minus[i] -= eps;
            let (fp, _) = spec.objective(&plus, data);
            let (fm, _) = spec.objective(&minus, data);
            let fd = (fp - fm) / (2.0 * eps);
            assert!(
                (grad[i] - fd).abs() < tol * (1.0 + fd.abs()),
                "gradient coord {i}: analytic {} vs finite-diff {fd}",
                grad[i]
            );
        }
    }

    /// Check that the mean grads row equals the objective gradient —
    /// the consistency contract between `grads` and `objective`.
    pub fn check_grads_mean<F: FeatureVec, S: ModelClassSpec<F>>(
        spec: &S,
        theta: &[f64],
        data: &Dataset<F>,
        tol: f64,
    ) {
        let (_, grad) = spec.objective(theta, data);
        let mean = spec.grads(theta, data).mean_row();
        for (g, m) in grad.iter().zip(&mean) {
            assert!((g - m).abs() < tol, "grads mean mismatch: {g} vs {m}");
        }
    }
}
