//! Linear regression as a full Gaussian MLE.
//!
//! The model: `y ~ N(wᵀx, σ²)` with **both** `w` and the noise variance
//! estimated — parameters are `θ = [w (d), u = ln σ²]`. Estimating `σ²`
//! matters for BlinkML: the information-matrix equality behind
//! ObservedFisher (`J ≈ H`, paper §3.4) holds only for a correctly
//! specified likelihood. Plain unit-variance least squares mis-scales
//! `J` by `σ⁴` on any dataset whose residual variance is not 1, which
//! inflates every accuracy estimate; with `σ²` profiled in, all three
//! statistics methods agree and are calibrated (paper Fig 9a).
//!
//! Minimizing over `u = ln σ²` keeps the parameter unconstrained. The
//! prediction `wᵀx` ignores `u`, so prediction differences are driven by
//! the `w` block only.

use crate::grads::Grads;
use crate::mcs::{regression_diff, ModelClassSpec, SweepEval};
use blinkml_data::parallel::par_sum_vecs;
use blinkml_data::{Dataset, FeatureVec, FoldRequest, MatrixView, TrainScratch};
use blinkml_linalg::blas::ger;
use blinkml_linalg::Matrix;

/// Bound on `|u| = |ln σ²|` to keep `exp` well-behaved during line
/// searches (σ² between e^-30 and e^30 covers any real dataset).
const LOG_VAR_CLAMP: f64 = 30.0;

/// L2-regularized Gaussian linear regression — the paper's `Lin` model.
///
/// The regularizer `(β/2)‖w‖²` applies to the weights only, not to the
/// noise parameter.
#[derive(Debug, Clone)]
pub struct LinearRegressionSpec {
    beta: f64,
}

impl LinearRegressionSpec {
    /// Spec with L2 coefficient `beta` (paper experiments use 0.001).
    pub fn new(beta: f64) -> Self {
        assert!(beta >= 0.0, "regularization must be nonnegative");
        LinearRegressionSpec { beta }
    }

    /// The weight block of a parameter vector.
    pub fn weights<'a>(&self, theta: &'a [f64]) -> &'a [f64] {
        &theta[..theta.len() - 1]
    }

    /// The estimated noise variance `σ² = e^u`.
    pub fn noise_variance(&self, theta: &[f64]) -> f64 {
        theta[theta.len() - 1]
            .clamp(-LOG_VAR_CLAMP, LOG_VAR_CLAMP)
            .exp()
    }
}

impl<F: FeatureVec> ModelClassSpec<F> for LinearRegressionSpec {
    fn name(&self) -> &'static str {
        "linear-regression"
    }

    fn param_dim(&self, data_dim: usize) -> usize {
        data_dim + 1
    }

    fn regularization(&self) -> f64 {
        self.beta
    }

    fn objective(&self, theta: &[f64], data: &Dataset<F>) -> (f64, Vec<f64>) {
        let d = data.dim();
        let n = data.len().max(1) as f64;
        let u = theta[d].clamp(-LOG_VAR_CLAMP, LOG_VAR_CLAMP);
        let inv_s = (-u).exp();
        let w = &theta[..d];
        // Slot 0: Σ residual²; slots 1..=d: Σ residual·x.
        let acc = par_sum_vecs(data.len(), d + 1, |i, acc| {
            let e = data.get(i);
            let r = e.x.dot(w) - e.y;
            acc[0] += r * r;
            e.x.add_scaled_into(r, &mut acc[1..]);
        });
        let sum_r2 = acc[0];
        // f = (1/n)Σ[r²/(2σ²) + u/2] + (β/2)‖w‖².
        let mut value = 0.5 * inv_s * sum_r2 / n + 0.5 * u;
        let mut grad = vec![0.0; d + 1];
        for (g, a) in grad[..d].iter_mut().zip(&acc[1..]) {
            *g = inv_s * a / n;
        }
        // ∂f/∂u = ½ − (1/2σ²)·mean(r²).
        grad[d] = 0.5 - 0.5 * inv_s * sum_r2 / n;
        if self.beta > 0.0 {
            let norm_sq: f64 = w.iter().map(|t| t * t).sum();
            value += 0.5 * self.beta * norm_sq;
            for (g, t) in grad[..d].iter_mut().zip(w) {
                *g += self.beta * t;
            }
        }
        (value, grad)
    }

    fn batched_training(&self) -> bool {
        true
    }

    fn value_grad_batched(
        &self,
        theta: &[f64],
        xm: &MatrixView,
        scratch: &mut TrainScratch,
        grad: &mut [f64],
    ) -> f64 {
        let d = xm.dim();
        debug_assert_eq!(theta.len(), d + 1);
        debug_assert_eq!(grad.len(), d + 1);
        let n = xm.len().max(1) as f64;
        let u = theta[d].clamp(-LOG_VAR_CLAMP, LOG_VAR_CLAMP);
        let inv_s = (-u).exp();
        let w = &theta[..d];
        // One fused sweep: chunk margins → residuals in place
        // (rᵢ = mᵢ − yᵢ, the scalar `dot(w) − y` op order) → chunk
        // gradient partial, merged like par_sum_vecs — bit-identical to
        // the scalar objective on the sample the view selects.
        let sum_r2 = xm.value_grad_fold(w, 0.0, &mut grad[..d], scratch, |start, margins| {
            let mut part = 0.0;
            for (local, m) in margins.iter_mut().enumerate() {
                let r = *m - xm.label(start + local);
                part += r * r;
                *m = r;
            }
            part
        });
        // f = (1/n)Σ[r²/(2σ²) + u/2] + (β/2)‖w‖².
        let mut value = 0.5 * inv_s * sum_r2 / n + 0.5 * u;
        for g in grad[..d].iter_mut() {
            *g = inv_s * *g / n;
        }
        // ∂f/∂u = ½ − (1/2σ²)·mean(r²).
        grad[d] = 0.5 - 0.5 * inv_s * sum_r2 / n;
        if self.beta > 0.0 {
            let norm_sq: f64 = w.iter().map(|t| t * t).sum();
            value += 0.5 * self.beta * norm_sq;
            for (g, t) in grad[..d].iter_mut().zip(w) {
                *g += self.beta * t;
            }
        }
        value
    }

    fn multi_lambda_batched(&self) -> bool {
        true
    }

    fn value_grad_batched_multi(
        &self,
        evals: &mut [SweepEval],
        xm: &MatrixView,
        scratch: &mut TrainScratch,
    ) {
        let d = xm.dim();
        // One fused multi-request sweep shares each chunk's cache-hot
        // rows across every grid point; residuals are formed exactly as
        // the single-λ kernel forms them, so per-request sums and
        // gradient partials are bit-identical to `value_grad_batched`.
        let mut reqs: Vec<FoldRequest> = evals
            .iter_mut()
            .map(|e| {
                debug_assert_eq!(e.theta.len(), d + 1);
                debug_assert_eq!(e.grad.len(), d + 1);
                FoldRequest::new(&e.theta[..d], 0.0, e.rows, &mut e.grad[..d])
            })
            .collect();
        xm.value_grad_fold_multi(&mut reqs, scratch, |_k, start, margins| {
            let mut part = 0.0;
            for (local, m) in margins.iter_mut().enumerate() {
                let r = *m - xm.label(start + local);
                part += r * r;
                *m = r;
            }
            (part, 0.0)
        });
        let sums: Vec<f64> = reqs.iter().map(|r| r.loss).collect();
        drop(reqs);
        for (e, sum_r2) in evals.iter_mut().zip(sums) {
            let n = e.rows.max(1) as f64;
            let u = e.theta[d].clamp(-LOG_VAR_CLAMP, LOG_VAR_CLAMP);
            let inv_s = (-u).exp();
            let w = &e.theta[..d];
            // f = (1/n)Σ[r²/(2σ²) + u/2] + (β/2)‖w‖².
            let mut value = 0.5 * inv_s * sum_r2 / n + 0.5 * u;
            for g in e.grad[..d].iter_mut() {
                *g = inv_s * *g / n;
            }
            // ∂f/∂u = ½ − (1/2σ²)·mean(r²).
            e.grad[d] = 0.5 - 0.5 * inv_s * sum_r2 / n;
            if e.beta > 0.0 {
                let norm_sq: f64 = w.iter().map(|t| t * t).sum();
                value += 0.5 * e.beta * norm_sq;
                for (g, t) in e.grad[..d].iter_mut().zip(w) {
                    *g += e.beta * t;
                }
            }
            e.value = value;
        }
    }

    fn with_regularization(&self, beta: f64) -> Option<Box<dyn ModelClassSpec<F>>> {
        Some(Box::new(LinearRegressionSpec::new(beta)))
    }

    fn grads(&self, theta: &[f64], data: &Dataset<F>) -> Grads {
        self.grads_cached(theta, data, None)
    }

    fn grads_cached(&self, theta: &[f64], data: &Dataset<F>, xm: Option<&MatrixView>) -> Grads {
        let d = data.dim();
        let u = theta[d].clamp(-LOG_VAR_CLAMP, LOG_VAR_CLAMP);
        let inv_s = (-u).exp();
        let w = &theta[..d];
        // ψ_i = [r·x/σ² + βw ; ½ − r²/(2σ²)].
        match xm.filter(|xm| !xm.is_sparse()) {
            Some(xm) => {
                debug_assert_eq!(xm.dim(), data.dim(), "cached matrix dim mismatch");
                let mut shift = vec![0.0; d + 1];
                for (s, t) in shift[..d].iter_mut().zip(w) {
                    *s = self.beta * t;
                }
                let mut m = Matrix::zeros(xm.len(), d + 1);
                // Batched margins, then a per-row fill from the view.
                let mut margins = vec![0.0; xm.len()];
                xm.margins_into(w, 0.0, &mut margins);
                for (i, &margin) in margins.iter().enumerate() {
                    let r = margin - xm.label(i);
                    let c = inv_s * r;
                    let row = m.row_mut(i);
                    row.copy_from_slice(&shift);
                    let xrow = xm.dense_row(i).expect("dense block");
                    for (rj, &xj) in row[..d].iter_mut().zip(xrow) {
                        *rj += c * xj;
                    }
                    row[d] = 0.5 - 0.5 * inv_s * r * r;
                }
                Grads::Dense(m)
            }
            None => {
                // Sparse views fall back to the per-example walk; a
                // gathered sparse view materializes its sample first so
                // the walk sees the sample, not the pool.
                let owned;
                let data = match xm.and_then(|v| v.sample_of()) {
                    Some(idx) => {
                        owned = data.subset(idx);
                        &owned
                    }
                    None => data,
                };
                let mut shift = vec![0.0; d + 1];
                for (s, t) in shift[..d].iter_mut().zip(w) {
                    *s = self.beta * t;
                }
                let mut m = Matrix::zeros(data.len(), d + 1);
                for (i, e) in data.iter().enumerate() {
                    let r = e.x.dot(w) - e.y;
                    let row = m.row_mut(i);
                    row.copy_from_slice(&shift);
                    e.x.add_scaled_into(inv_s * r, &mut row[..d]);
                    row[d] = 0.5 - 0.5 * inv_s * r * r;
                }
                Grads::Dense(m)
            }
        }
    }

    fn closed_form_hessian(&self, theta: &[f64], data: &Dataset<F>) -> Option<Matrix> {
        let d = data.dim();
        let n = data.len().max(1) as f64;
        let u = theta[d].clamp(-LOG_VAR_CLAMP, LOG_VAR_CLAMP);
        let inv_s = (-u).exp();
        let w = &theta[..d];
        let mut h = Matrix::zeros(d + 1, d + 1);
        let mut xd = vec![0.0; d];
        for e in data.iter() {
            let r = e.x.dot(w) - e.y;
            xd.iter_mut().for_each(|v| *v = 0.0);
            e.x.add_scaled_into(1.0, &mut xd);
            // H_ww += x xᵀ/(nσ²).
            let mut block = Matrix::zeros(d, d);
            ger(inv_s / n, &xd, &xd, &mut block);
            for i in 0..d {
                for j in 0..d {
                    h[(i, j)] += block[(i, j)];
                }
            }
            // H_wu = H_uw += −r·x/(nσ²).
            for (i, &xi) in xd.iter().enumerate() {
                let v = -inv_s * r * xi / n;
                h[(i, d)] += v;
                h[(d, i)] += v;
            }
            // H_uu += r²/(2nσ²).
            h[(d, d)] += 0.5 * inv_s * r * r / n;
        }
        for i in 0..d {
            h[(i, i)] += self.beta;
        }
        Some(h)
    }

    fn predict(&self, theta: &[f64], x: &F) -> f64 {
        x.dot(self.weights(theta))
    }

    fn diff(&self, theta_a: &[f64], theta_b: &[f64], holdout: &Dataset<F>) -> f64 {
        regression_diff(
            |x: &F| self.predict(theta_a, x),
            |x: &F| self.predict(theta_b, x),
            holdout,
        )
    }

    fn generalization_error(&self, theta: &[f64], data: &Dataset<F>) -> f64 {
        if data.is_empty() {
            return 0.0;
        }
        let w = self.weights(theta);
        let sum_sq: f64 = data
            .iter()
            .map(|e| {
                let r = e.x.dot(w) - e.y;
                r * r
            })
            .sum();
        (sum_sq / data.len() as f64).sqrt()
    }

    fn num_margin_outputs(&self, _data_dim: usize) -> Option<usize> {
        Some(1)
    }

    fn margins(&self, theta: &[f64], x: &F, out: &mut [f64]) {
        out[0] = x.dot(self.weights(theta));
    }

    fn margin_weights(&self, theta: &[f64], data_dim: usize) -> Option<Matrix> {
        // Predictions ignore the trailing ln σ² parameter.
        Some(Matrix::from_vec(data_dim, 1, theta[..data_dim].to_vec()))
    }

    fn predict_from_margins(&self, scores: &[f64]) -> f64 {
        scores[0]
    }

    fn diff_is_rms(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::glm::test_support::{check_gradient, check_grads_mean};
    use blinkml_data::generators::synthetic_linear;
    use blinkml_data::DenseVec;
    use blinkml_optim::OptimOptions;

    type M = dyn ModelClassSpec<DenseVec>;

    #[test]
    fn gradient_matches_finite_differences() {
        let (data, _) = synthetic_linear(200, 5, 0.5, 1);
        let spec = LinearRegressionSpec::new(1e-3);
        // Generic point including a non-trivial noise parameter.
        let mut theta: Vec<f64> = (0..6).map(|i| 0.1 * i as f64 - 0.2).collect();
        theta[5] = -0.4; // u = ln σ²
        check_gradient(&spec, &theta, &data, 1e-5);
        check_grads_mean(&spec, &theta, &data, 1e-10);
    }

    #[test]
    fn recovers_weights_and_noise_variance() {
        let noise = 0.3;
        let (data, w) = synthetic_linear(20_000, 6, noise, 2);
        let spec = LinearRegressionSpec::new(1e-6);
        let model = spec.train(&data, None, &OptimOptions::default()).unwrap();
        assert!(model.converged);
        for (t, wi) in spec.weights(model.parameters()).iter().zip(&w) {
            assert!((t - wi).abs() < 0.02, "{t} vs {wi}");
        }
        let s2 = spec.noise_variance(model.parameters());
        assert!(
            (s2 - noise * noise).abs() < 0.01,
            "σ̂² = {s2} vs true {}",
            noise * noise
        );
    }

    #[test]
    fn regularization_shrinks_weights() {
        let (data, _) = synthetic_linear(1_000, 4, 0.3, 3);
        let weak = LinearRegressionSpec::new(1e-6)
            .train(&data, None, &OptimOptions::default())
            .unwrap();
        let strong = LinearRegressionSpec::new(10.0)
            .train(&data, None, &OptimOptions::default())
            .unwrap();
        let spec = LinearRegressionSpec::new(0.0);
        let norm = |t: &[f64]| spec.weights(t).iter().map(|v| v * v).sum::<f64>();
        assert!(norm(strong.parameters()) < 0.5 * norm(weak.parameters()));
    }

    #[test]
    fn closed_form_hessian_matches_numeric_jacobian() {
        let (data, _) = synthetic_linear(400, 3, 0.5, 4);
        let spec = LinearRegressionSpec::new(0.01);
        let mut theta = vec![0.2, -0.4, 0.6, 0.0];
        theta[3] = -0.3;
        let h = spec.closed_form_hessian(&theta, &data).unwrap();
        let eps = 1e-6;
        for i in 0..4 {
            let mut plus = theta.clone();
            let mut minus = theta.clone();
            plus[i] += eps;
            minus[i] -= eps;
            let (_, gp) = spec.objective(&plus, &data);
            let (_, gm) = spec.objective(&minus, &data);
            for j in 0..4 {
                let fd = (gp[j] - gm[j]) / (2.0 * eps);
                assert!(
                    (h[(j, i)] - fd).abs() < 1e-4 * (1.0 + fd.abs()),
                    "H[{j}][{i}]: {} vs {fd}",
                    h[(j, i)]
                );
            }
        }
    }

    #[test]
    fn diff_is_rms_of_prediction_gap_and_ignores_noise_param() {
        let (data, _) = synthetic_linear(500, 3, 0.1, 5);
        let spec = LinearRegressionSpec::new(0.0);
        let a = vec![1.0, 0.0, 0.0, 0.0];
        let b = vec![1.0, 0.0, 0.5, 0.0];
        let v = spec.diff(&a, &b, &data);
        // Feature 2 is standard normal, so RMS gap ≈ 0.5.
        assert!((v - 0.5).abs() < 0.05, "diff {v}");
        // Different noise parameter, same weights: no prediction change.
        let c = vec![1.0, 0.0, 0.0, 2.0];
        assert_eq!(spec.diff(&a, &c, &data), 0.0);
    }

    #[test]
    fn margins_agree_with_predict() {
        let (data, _) = synthetic_linear(10, 3, 0.1, 6);
        let spec = LinearRegressionSpec::new(0.0);
        let theta = vec![0.5, -1.0, 2.0, 0.1];
        let mut out = [0.0];
        for e in data.iter() {
            <M>::margins(&spec, &theta, &e.x, &mut out);
            assert_eq!(
                <M>::predict_from_margins(&spec, &out),
                spec.predict(&theta, &e.x)
            );
        }
        assert!(<M>::diff_is_rms(&spec));
    }

    /// Every grid point of a fused multi-λ evaluation must be
    /// bit-identical to the single-λ batched kernel run on a
    /// `with_regularization(β_k)` spec over the matching row prefix, at
    /// any thread budget.
    #[test]
    fn multi_lambda_batched_is_bitwise_looped_single_lambda() {
        use blinkml_data::parallel::{set_max_threads, CHUNK_SIZE};
        use blinkml_data::DatasetMatrix;
        let n = CHUNK_SIZE + 257;
        let d = 6;
        let dim = d + 1;
        let (data, _) = synthetic_linear(n, d, 0.4, 21);
        let xm = DatasetMatrix::from_dataset(&data);
        let view = xm.view();
        let betas = [0.0, 1e-3, 0.1];
        let rows = [n, CHUNK_SIZE / 2, n - 7];
        let thetas: Vec<Vec<f64>> = (0..3)
            .map(|k| {
                (0..dim)
                    .map(|j| ((k * dim + j) as f64 * 0.37).sin() * 0.5)
                    .collect()
            })
            .collect();
        // The host spec's own β must be ignored: each eval carries its own.
        let spec = LinearRegressionSpec::new(0.5);
        for budget in [1usize, 4] {
            set_max_threads(Some(budget));
            let mut grads: Vec<Vec<f64>> = vec![vec![0.0; dim]; 3];
            let values: Vec<f64> = {
                let mut evals: Vec<SweepEval> = thetas
                    .iter()
                    .zip(grads.iter_mut())
                    .enumerate()
                    .map(|(k, (t, g))| SweepEval::new(t, betas[k], rows[k], g))
                    .collect();
                let mut scratch = TrainScratch::new();
                <M>::value_grad_batched_multi(&spec, &mut evals, &view, &mut scratch);
                evals.iter().map(|e| e.value).collect()
            };
            for k in 0..3 {
                let solo = <M>::with_regularization(&spec, betas[k]).unwrap();
                let pv = view.prefix(rows[k]);
                let mut g = vec![0.0; dim];
                let mut scratch = TrainScratch::new();
                let v = solo.value_grad_batched(&thetas[k], &pv, &mut scratch, &mut g);
                assert_eq!(v.to_bits(), values[k].to_bits(), "value k={k} t={budget}");
                for (a, b) in g.iter().zip(&grads[k]) {
                    assert_eq!(a.to_bits(), b.to_bits(), "grad k={k} t={budget}");
                }
            }
        }
        set_max_threads(None);
    }

    #[test]
    fn generalization_error_is_rmse() {
        let (data, w) = synthetic_linear(2_000, 4, 0.2, 7);
        let spec = LinearRegressionSpec::new(0.0);
        let mut theta = w.clone();
        theta.push(2.0f64.ln() * 0.0); // any u; RMSE ignores it
        let err = spec.generalization_error(&theta, &data);
        assert!((err - 0.2).abs() < 0.02, "rmse {err}");
    }

    #[test]
    fn objective_is_stable_at_extreme_noise_params() {
        let (data, _) = synthetic_linear(100, 2, 0.1, 8);
        let spec = LinearRegressionSpec::new(1e-3);
        for u in [-100.0, 100.0] {
            let theta = vec![0.1, 0.1, u];
            let (v, g) = spec.objective(&theta, &data);
            assert!(v.is_finite(), "value at u={u}");
            assert!(g.iter().all(|x| x.is_finite()), "gradient at u={u}");
        }
    }
}
