//! Max-entropy (multinomial softmax) classifier.

use crate::grads::Grads;
use crate::mcs::{classification_diff, ModelClassSpec};
use blinkml_data::parallel::{par_ranges, par_sum_vecs, CHUNK_SIZE};
use blinkml_data::{Dataset, FeatureVec, MatrixView, SparseVec, TrainScratch};
use blinkml_linalg::Matrix;

/// L2-regularized max-entropy classifier over `K` classes — the paper's
/// `ME` model.
///
/// Parameters are class-major: block `k` is `θ[k·d .. (k+1)·d]` and the
/// class scores are `m_k = θ_kᵀ x`, normalized by softmax.
#[derive(Debug, Clone)]
pub struct MaxEntSpec {
    beta: f64,
    num_classes: usize,
}

impl MaxEntSpec {
    /// Spec with `num_classes` classes and L2 coefficient `beta`.
    ///
    /// # Panics
    /// Panics for fewer than two classes or negative `beta`.
    pub fn new(beta: f64, num_classes: usize) -> Self {
        assert!(num_classes >= 2, "max-entropy needs at least two classes");
        assert!(beta >= 0.0, "regularization must be nonnegative");
        MaxEntSpec { beta, num_classes }
    }

    /// Number of classes `K`.
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// Class scores `m_k = θ_kᵀx` for one example.
    fn scores<F: FeatureVec>(&self, theta: &[f64], x: &F, out: &mut [f64]) {
        let d = x.dim();
        for (k, o) in out.iter_mut().enumerate() {
            *o = x.dot(&theta[k * d..(k + 1) * d]);
        }
    }
}

/// Softmax probabilities in place (numerically stable).
fn softmax_inplace(scores: &mut [f64]) {
    let max = scores.iter().fold(f64::NEG_INFINITY, |m, &v| m.max(v));
    let mut total = 0.0;
    for s in scores.iter_mut() {
        *s = (*s - max).exp();
        total += *s;
    }
    for s in scores.iter_mut() {
        *s /= total;
    }
}

/// `log Σ e^{sᵢ}` (numerically stable).
fn log_sum_exp(scores: &[f64]) -> f64 {
    let max = scores.iter().fold(f64::NEG_INFINITY, |m, &v| m.max(v));
    let sum: f64 = scores.iter().map(|&s| (s - max).exp()).sum();
    max + sum.ln()
}

/// Index of the maximum score (lowest index wins ties).
fn argmax(scores: &[f64]) -> usize {
    let mut best = 0;
    for (i, &s) in scores.iter().enumerate().skip(1) {
        if s > scores[best] {
            best = i;
        }
    }
    best
}

impl<F: FeatureVec> ModelClassSpec<F> for MaxEntSpec {
    fn name(&self) -> &'static str {
        "max-entropy"
    }

    fn param_dim(&self, data_dim: usize) -> usize {
        self.num_classes * data_dim
    }

    fn regularization(&self) -> f64 {
        self.beta
    }

    fn label_domain(&self) -> blinkml_data::LabelDomain {
        blinkml_data::LabelDomain::ClassIndex(self.num_classes)
    }

    fn objective(&self, theta: &[f64], data: &Dataset<F>) -> (f64, Vec<f64>) {
        let d = data.dim();
        let k_classes = self.num_classes;
        let dim = k_classes * d;
        let n = data.len().max(1) as f64;
        // Slot 0: Σ loss; slots 1..: Σ gradient.
        let acc = par_sum_vecs(data.len(), dim + 1, |i, acc| {
            let e = data.get(i);
            let label = e.y as usize;
            debug_assert!(label < k_classes, "label {label} out of range");
            let mut p = vec![0.0; k_classes];
            self.scores(theta, &e.x, &mut p);
            acc[0] += log_sum_exp(&p) - p[label];
            softmax_inplace(&mut p);
            for (k, &pk) in p.iter().enumerate() {
                let coef = pk - if k == label { 1.0 } else { 0.0 };
                e.x.add_scaled_into(coef, &mut acc[1 + k * d..1 + (k + 1) * d]);
            }
        });
        let mut value = acc[0] / n;
        let mut grad: Vec<f64> = acc[1..].iter().map(|v| v / n).collect();
        if self.beta > 0.0 {
            let norm_sq: f64 = theta.iter().map(|t| t * t).sum();
            value += 0.5 * self.beta * norm_sq;
            for (g, t) in grad.iter_mut().zip(theta) {
                *g += self.beta * t;
            }
        }
        (value, grad)
    }

    fn batched_training(&self) -> bool {
        true
    }

    fn value_grad_batched(
        &self,
        theta: &[f64],
        xm: &MatrixView,
        scratch: &mut TrainScratch,
        grad: &mut [f64],
    ) -> f64 {
        let d = xm.dim();
        let kc = self.num_classes;
        let dim = kc * d;
        debug_assert_eq!(theta.len(), dim);
        debug_assert_eq!(grad.len(), dim);
        let rows = xm.len();
        let n = rows.max(1) as f64;
        let mut loss = 0.0;
        // Fused one-pass sweep for both layouts: each row is visited
        // once per probe — K score dots, softmax, K coefficient
        // accumulations — in the scalar path's exact per-row order, with
        // the chunk partial merged like par_sum_vecs. (Separate
        // per-class margin + gradient passes would stream the design
        // view 2K times per probe, a memory-traffic regression on
        // out-of-cache shapes.)
        let (gpart, p) = scratch.slot_pair(0, 1, dim, kc);
        grad.iter_mut().for_each(|g| *g = 0.0);
        let mut start = 0;
        while start < rows {
            let end = (start + CHUNK_SIZE).min(rows);
            let mut part = 0.0;
            gpart.iter_mut().for_each(|g| *g = 0.0);
            for i in start..end {
                let label = xm.label(i) as usize;
                debug_assert!(label < kc, "label {label} out of range");
                match xm.sparse_row(i) {
                    Some((idx, val)) => {
                        for (k, pk) in p.iter_mut().enumerate() {
                            let tk = &theta[k * d..(k + 1) * d];
                            let mut acc = 0.0;
                            for (&j, &v) in idx.iter().zip(val) {
                                acc += v * tk[j as usize];
                            }
                            *pk = acc;
                        }
                        part += log_sum_exp(p) - p[label];
                        softmax_inplace(p);
                        for (k, &pk) in p.iter().enumerate() {
                            let coef = pk - if k == label { 1.0 } else { 0.0 };
                            let gk = &mut gpart[k * d..(k + 1) * d];
                            for (&j, &v) in idx.iter().zip(val) {
                                gk[j as usize] += coef * v;
                            }
                        }
                    }
                    None => {
                        let xrow = xm.dense_row(i).expect("dense block");
                        // Per-class dots keep the scalar `scores` shape
                        // (FeatureVec::dot is vector::dot), so the
                        // margins are bit-identical.
                        for (k, pk) in p.iter_mut().enumerate() {
                            *pk = blinkml_linalg::vector::dot(xrow, &theta[k * d..(k + 1) * d]);
                        }
                        part += log_sum_exp(p) - p[label];
                        softmax_inplace(p);
                        for (k, &pk) in p.iter().enumerate() {
                            let coef = pk - if k == label { 1.0 } else { 0.0 };
                            let gk = &mut gpart[k * d..(k + 1) * d];
                            for (gj, &xj) in gk.iter_mut().zip(xrow) {
                                *gj += coef * xj;
                            }
                        }
                    }
                }
            }
            loss += part;
            for (g, gp) in grad.iter_mut().zip(gpart.iter()) {
                *g += gp;
            }
            start = end;
        }
        let mut value = loss / n;
        for g in grad.iter_mut() {
            *g /= n;
        }
        if self.beta > 0.0 {
            let norm_sq: f64 = theta.iter().map(|t| t * t).sum();
            value += 0.5 * self.beta * norm_sq;
            for (g, t) in grad.iter_mut().zip(theta) {
                *g += self.beta * t;
            }
        }
        value
    }

    fn grads_cached(&self, theta: &[f64], data: &Dataset<F>, xm: Option<&MatrixView>) -> Grads {
        let Some(xm) = xm else {
            return self.grads(theta, data);
        };
        debug_assert_eq!(xm.dim(), data.dim(), "cached matrix dim mismatch");
        let d = xm.dim();
        let kc = self.num_classes;
        let dim = kc * d;
        let rows_n = xm.len();
        // Batched class margins once, then the per-row softmax fill.
        let mut mbuf = vec![0.0; kc * rows_n];
        for k in 0..kc {
            xm.margins_into(
                &theta[k * d..(k + 1) * d],
                0.0,
                &mut mbuf[k * rows_n..(k + 1) * rows_n],
            );
        }
        let shift: Vec<f64> = theta.iter().map(|t| self.beta * t).collect();
        if xm.is_sparse() {
            let rows: Vec<SparseVec> = par_ranges(rows_n, |range| {
                let mut p = vec![0.0; kc];
                range
                    .map(|i| {
                        let label = xm.label(i) as usize;
                        for (k, pk) in p.iter_mut().enumerate() {
                            *pk = mbuf[k * rows_n + i];
                        }
                        softmax_inplace(&mut p);
                        let (idx, val) = xm.sparse_row(i).expect("sparse block");
                        // Per-class blocks are consecutive and internally
                        // sorted, so concatenation stays strictly sorted.
                        let mut indices = Vec::new();
                        let mut values = Vec::new();
                        for (k, &pk) in p.iter().enumerate() {
                            let coef = pk - if k == label { 1.0 } else { 0.0 };
                            let offset = (k * d) as u32;
                            indices.extend(idx.iter().map(|&i| i + offset));
                            values.extend(val.iter().map(|v| coef * v));
                        }
                        SparseVec::new(dim, indices, values)
                    })
                    .collect::<Vec<_>>()
            })
            .into_iter()
            .flatten()
            .collect();
            Grads::Sparse { rows, shift }
        } else {
            let mut m = Matrix::zeros(rows_n, dim);
            let mut p = vec![0.0; kc];
            for i in 0..rows_n {
                let label = xm.label(i) as usize;
                for (k, pk) in p.iter_mut().enumerate() {
                    *pk = mbuf[k * rows_n + i];
                }
                softmax_inplace(&mut p);
                let row = m.row_mut(i);
                row.copy_from_slice(&shift);
                let xrow = xm.dense_row(i).expect("dense block");
                for (k, &pk) in p.iter().enumerate() {
                    let coef = pk - if k == label { 1.0 } else { 0.0 };
                    for (rj, &xj) in row[k * d..(k + 1) * d].iter_mut().zip(xrow) {
                        *rj += coef * xj;
                    }
                }
            }
            Grads::Dense(m)
        }
    }

    fn grads(&self, theta: &[f64], data: &Dataset<F>) -> Grads {
        let d = data.dim();
        let k_classes = self.num_classes;
        let dim = k_classes * d;
        let shift: Vec<f64> = theta.iter().map(|t| self.beta * t).collect();
        if F::IS_SPARSE {
            let rows: Vec<SparseVec> = par_ranges(data.len(), |range| {
                let mut p = vec![0.0; k_classes];
                range
                    .map(|i| {
                        let e = data.get(i);
                        let label = e.y as usize;
                        self.scores(theta, &e.x, &mut p);
                        softmax_inplace(&mut p);
                        // Per-class blocks are consecutive and internally
                        // sorted, so concatenation stays strictly sorted.
                        let mut indices = Vec::new();
                        let mut values = Vec::new();
                        for (k, &pk) in p.iter().enumerate() {
                            let coef = pk - if k == label { 1.0 } else { 0.0 };
                            let block = e.x.scaled_sparse(coef, d, 0);
                            let offset = (k * d) as u32;
                            indices.extend(block.indices().iter().map(|&i| i + offset));
                            values.extend_from_slice(block.values());
                        }
                        SparseVec::new(dim, indices, values)
                    })
                    .collect::<Vec<_>>()
            })
            .into_iter()
            .flatten()
            .collect();
            Grads::Sparse { rows, shift }
        } else {
            let mut m = Matrix::zeros(data.len(), dim);
            let mut p = vec![0.0; k_classes];
            for (i, e) in data.iter().enumerate() {
                let label = e.y as usize;
                self.scores(theta, &e.x, &mut p);
                softmax_inplace(&mut p);
                let row = m.row_mut(i);
                row.copy_from_slice(&shift);
                for (k, &pk) in p.iter().enumerate() {
                    let coef = pk - if k == label { 1.0 } else { 0.0 };
                    e.x.add_scaled_into(coef, &mut row[k * d..(k + 1) * d]);
                }
            }
            Grads::Dense(m)
        }
    }

    fn predict(&self, theta: &[f64], x: &F) -> f64 {
        let mut scores = vec![0.0; self.num_classes];
        self.scores(theta, x, &mut scores);
        argmax(&scores) as f64
    }

    fn diff(&self, theta_a: &[f64], theta_b: &[f64], holdout: &Dataset<F>) -> f64 {
        classification_diff(
            |x: &F| self.predict(theta_a, x),
            |x: &F| self.predict(theta_b, x),
            holdout,
        )
    }

    fn generalization_error(&self, theta: &[f64], data: &Dataset<F>) -> f64 {
        if data.is_empty() {
            return 0.0;
        }
        let wrong = data
            .iter()
            .filter(|e| self.predict(theta, &e.x) != e.y)
            .count();
        wrong as f64 / data.len() as f64
    }

    fn num_margin_outputs(&self, _data_dim: usize) -> Option<usize> {
        Some(self.num_classes)
    }

    fn margins(&self, theta: &[f64], x: &F, out: &mut [f64]) {
        self.scores(theta, x, out);
    }

    fn margin_weights(&self, theta: &[f64], data_dim: usize) -> Option<Matrix> {
        // Class-major θ reshaped to data_dim × K: W[i][k] = θ[k·d + i].
        debug_assert_eq!(theta.len(), self.num_classes * data_dim);
        Some(Matrix::from_fn(data_dim, self.num_classes, |i, k| {
            theta[k * data_dim + i]
        }))
    }

    fn predict_from_margins(&self, scores: &[f64]) -> f64 {
        argmax(scores) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::glm::test_support::{check_gradient, check_grads_mean};
    use blinkml_data::generators::{synthetic_multiclass, yelp_like};
    use blinkml_optim::OptimOptions;

    #[test]
    fn softmax_and_logsumexp_are_stable() {
        let mut s = vec![1000.0, 1000.0, 1000.0];
        let lse = log_sum_exp(&s);
        assert!((lse - (1000.0 + 3.0f64.ln())).abs() < 1e-9);
        softmax_inplace(&mut s);
        for p in &s {
            assert!((p - 1.0 / 3.0).abs() < 1e-12);
        }
    }

    #[test]
    fn argmax_breaks_ties_low() {
        assert_eq!(argmax(&[1.0, 1.0, 0.5]), 0);
        assert_eq!(argmax(&[0.1, 0.9, 0.9]), 1);
    }

    #[test]
    fn gradient_matches_finite_differences() {
        let data = synthetic_multiclass(100, 3, 3, 1);
        let spec = MaxEntSpec::new(1e-3, 3);
        let theta: Vec<f64> = (0..9).map(|i| 0.05 * (i as f64) - 0.2).collect();
        check_gradient(&spec, &theta, &data, 1e-5);
        check_grads_mean(&spec, &theta, &data, 1e-10);
    }

    #[test]
    fn sparse_and_dense_grads_agree() {
        // The same logical data through both representations must give
        // identical gradient rows.
        let sparse_data = yelp_like(50, 200, 2);
        let dense_data = {
            let examples = sparse_data
                .iter()
                .map(|e| blinkml_data::Example {
                    x: blinkml_data::DenseVec::new(e.x.to_dense()),
                    y: e.y,
                })
                .collect();
            Dataset::new("dense-copy", 200, examples)
        };
        let spec = MaxEntSpec::new(1e-3, 5);
        let theta: Vec<f64> = (0..1000).map(|i| ((i * 7) % 13) as f64 * 0.01).collect();
        let gs = <MaxEntSpec as ModelClassSpec<SparseVec>>::grads(&spec, &theta, &sparse_data);
        let gd = <MaxEntSpec as ModelClassSpec<blinkml_data::DenseVec>>::grads(
            &spec,
            &theta,
            &dense_data,
        );
        for i in 0..50 {
            let rs = gs.row_dense(i);
            let rd = gd.row_dense(i);
            for (a, b) in rs.iter().zip(&rd) {
                assert!((a - b).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn training_separates_gaussian_clusters() {
        let data = synthetic_multiclass(3_000, 6, 4, 3);
        let spec = MaxEntSpec::new(1e-3, 4);
        let model = spec.train(&data, None, &OptimOptions::default()).unwrap();
        let err = spec.generalization_error(model.parameters(), &data);
        assert!(err < 0.1, "training error {err}");
    }

    #[test]
    fn margins_agree_with_predict() {
        type Spec = MaxEntSpec;
        type M = dyn ModelClassSpec<blinkml_data::DenseVec>;
        let data = synthetic_multiclass(50, 4, 3, 5);
        let spec = Spec::new(1e-3, 3);
        let theta: Vec<f64> = (0..12).map(|i| (i as f64 * 0.37).sin()).collect();
        let mut out = vec![0.0; 3];
        for e in data.iter() {
            <Spec as ModelClassSpec<blinkml_data::DenseVec>>::margins(
                &spec, &theta, &e.x, &mut out,
            );
            let from_margins = <M>::predict_from_margins(&spec, &out);
            assert_eq!(from_margins, spec.predict(&theta, &e.x));
        }
    }

    #[test]
    #[should_panic(expected = "at least two classes")]
    fn rejects_single_class() {
        MaxEntSpec::new(0.1, 1);
    }
}
