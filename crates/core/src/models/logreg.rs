//! Binary logistic regression.

use crate::models::glm::{GlmFamily, GlmSpec};

/// Numerically stable `log(1 + e^m)`.
#[inline]
fn log1p_exp(m: f64) -> f64 {
    if m > 0.0 {
        m + (-m).exp().ln_1p()
    } else {
        m.exp().ln_1p()
    }
}

/// Logistic sigmoid.
#[inline]
pub fn sigmoid(m: f64) -> f64 {
    if m >= 0.0 {
        1.0 / (1.0 + (-m).exp())
    } else {
        let e = m.exp();
        e / (1.0 + e)
    }
}

/// Bernoulli family with the logit link: `ℓ(m, y) = log(1 + eᵐ) − y·m`,
/// labels `y ∈ {0, 1}`.
#[derive(Debug, Clone, Copy)]
pub struct LogisticFamily;

impl GlmFamily for LogisticFamily {
    const NAME: &'static str = "logistic-regression";
    const RMS_DIFF: bool = false;

    #[inline]
    fn loss(m: f64, y: f64) -> f64 {
        log1p_exp(m) - y * m
    }

    #[inline]
    fn dloss(m: f64, y: f64) -> f64 {
        sigmoid(m) - y
    }

    #[inline]
    fn loss_dloss(m: f64, y: f64) -> (f64, f64) {
        // One shared exponential instead of the two that separate
        // loss/dloss calls spend. The branches replicate `log1p_exp` and
        // `sigmoid` exactly (at m = 0 both expressions evaluate the same
        // exp(0) = 1), so the results are bit-identical to the separate
        // calls — the batched objective relies on that.
        if m > 0.0 {
            let e = (-m).exp();
            (m + e.ln_1p() - y * m, 1.0 / (1.0 + e) - y)
        } else if m == 0.0 {
            (m.exp().ln_1p() - y * m, 0.5 - y)
        } else {
            let e = m.exp();
            (e.ln_1p() - y * m, e / (1.0 + e) - y)
        }
    }

    #[inline]
    fn d2loss(m: f64, _y: f64) -> Option<f64> {
        let s = sigmoid(m);
        Some(s * (1.0 - s))
    }

    #[inline]
    fn predict(m: f64) -> f64 {
        if m > 0.0 {
            1.0
        } else {
            0.0
        }
    }

    #[inline]
    fn example_error(m: f64, y: f64) -> f64 {
        if Self::predict(m) == y {
            0.0
        } else {
            1.0
        }
    }

    fn label_domain() -> blinkml_data::LabelDomain {
        blinkml_data::LabelDomain::Binary01
    }
}

/// L2-regularized binary logistic regression — the paper's `LR` model
/// (closed-form Hessian `H = (1/n)XᵀQX + βI` with
/// `Q_ii = σ(θᵀxᵢ)(1 − σ(θᵀxᵢ))`, §3.4).
pub type LogisticRegressionSpec = GlmSpec<LogisticFamily>;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mcs::ModelClassSpec;
    use crate::models::glm::test_support::{check_gradient, check_grads_mean};
    use blinkml_data::generators::synthetic_logistic;
    use blinkml_optim::OptimOptions;

    #[test]
    fn sigmoid_is_stable_and_correct() {
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-15);
        assert!(sigmoid(40.0) > 0.999999);
        assert!(sigmoid(-40.0) < 1e-6);
        assert!(sigmoid(800.0).is_finite());
        assert!(sigmoid(-800.0).is_finite());
        // Symmetry: σ(−m) = 1 − σ(m).
        for m in [-3.0, -0.5, 0.7, 5.0] {
            assert!((sigmoid(-m) - (1.0 - sigmoid(m))).abs() < 1e-12);
        }
    }

    #[test]
    fn loss_is_stable_at_extremes() {
        assert!(LogisticFamily::loss(700.0, 1.0).is_finite());
        assert!(LogisticFamily::loss(-700.0, 0.0).is_finite());
        // log(1 + e^0) = ln 2.
        assert!((LogisticFamily::loss(0.0, 0.0) - std::f64::consts::LN_2).abs() < 1e-12);
    }

    #[test]
    fn gradient_matches_finite_differences() {
        let (data, _) = synthetic_logistic(300, 4, 2.0, 1);
        let spec = LogisticRegressionSpec::new(1e-3);
        let theta = vec![0.3, -0.2, 0.5, 0.1];
        check_gradient(&spec, &theta, &data, 1e-5);
        check_grads_mean(&spec, &theta, &data, 1e-10);
    }

    #[test]
    fn training_approaches_ground_truth() {
        let (data, w) = synthetic_logistic(20_000, 5, 2.0, 2);
        let spec = LogisticRegressionSpec::new(1e-4);
        let model = spec.train(&data, None, &OptimOptions::default()).unwrap();
        assert!(model.converged);
        // MLE is consistent: cosine similarity with truth should be high.
        let cos = blinkml_linalg::vector::cosine_similarity(model.parameters(), &w);
        assert!(cos > 0.97, "cosine {cos}");
    }

    #[test]
    fn predictions_and_diff() {
        let (data, _) = synthetic_logistic(500, 3, 2.0, 3);
        let spec = LogisticRegressionSpec::new(1e-3);
        let a = vec![1.0, 1.0, 1.0];
        let flipped: Vec<f64> = a.iter().map(|v| -v).collect();
        // A classifier and its sign-flip disagree everywhere (modulo
        // zero margins, measure-zero here).
        let v = spec.diff(&a, &flipped, &data);
        assert!(v > 0.99, "diff {v}");
        assert_eq!(spec.diff(&a, &a, &data), 0.0);
    }

    #[test]
    fn closed_form_hessian_matches_numeric_jacobian() {
        let (data, _) = synthetic_logistic(400, 3, 1.5, 4);
        let spec = LogisticRegressionSpec::new(0.01);
        let theta = vec![0.2, -0.4, 0.6];
        let h = spec.closed_form_hessian(&theta, &data).unwrap();
        // Numeric Jacobian of the objective gradient.
        let eps = 1e-6;
        for i in 0..3 {
            let mut plus = theta.clone();
            let mut minus = theta.clone();
            plus[i] += eps;
            minus[i] -= eps;
            let (_, gp) = spec.objective(&plus, &data);
            let (_, gm) = spec.objective(&minus, &data);
            for j in 0..3 {
                let fd = (gp[j] - gm[j]) / (2.0 * eps);
                assert!(
                    (h[(j, i)] - fd).abs() < 1e-5,
                    "H[{j}][{i}]: {} vs {fd}",
                    h[(j, i)]
                );
            }
        }
    }

    #[test]
    fn warm_start_converges_faster() {
        let (data, _) = synthetic_logistic(5_000, 10, 2.0, 5);
        let spec = LogisticRegressionSpec::new(1e-3);
        let opts = OptimOptions::default();
        let cold = spec.train(&data, None, &opts).unwrap();
        let warm = spec.train(&data, Some(cold.parameters()), &opts).unwrap();
        assert!(warm.iterations <= cold.iterations);
        assert!(
            warm.iterations <= 2,
            "warm start from the optimum: {}",
            warm.iterations
        );
    }

    #[test]
    fn generalization_error_in_plausible_range() {
        let (data, w) = synthetic_logistic(10_000, 5, 2.0, 6);
        let spec = LogisticRegressionSpec::new(1e-3);
        let err = spec.generalization_error(&w, &data);
        // Margin scale 2.0 gives Bayes error ≈ 0.15–0.25.
        assert!((0.05..0.35).contains(&err), "bayes error {err}");
    }
}
