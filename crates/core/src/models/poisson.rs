//! Poisson regression with the log link.
//!
//! Listed by the paper as a supported GLM (§1, §2.2) though not
//! evaluated; included here for completeness of the model family.

use crate::models::glm::{GlmFamily, GlmSpec};

/// Clamp on the linear predictor so `exp` cannot overflow; rates beyond
/// `e^{30}` are far outside any count-data regime.
const MARGIN_CLAMP: f64 = 30.0;

/// Poisson family with the log link:
/// `ℓ(m, y) = eᵐ − y·m` (negative log-likelihood up to `log y!`).
#[derive(Debug, Clone, Copy)]
pub struct PoissonFamily;

impl GlmFamily for PoissonFamily {
    const NAME: &'static str = "poisson-regression";
    const RMS_DIFF: bool = true;

    #[inline]
    fn loss(m: f64, y: f64) -> f64 {
        let m = m.clamp(-MARGIN_CLAMP, MARGIN_CLAMP);
        m.exp() - y * m
    }

    #[inline]
    fn dloss(m: f64, y: f64) -> f64 {
        m.clamp(-MARGIN_CLAMP, MARGIN_CLAMP).exp() - y
    }

    #[inline]
    fn loss_dloss(m: f64, y: f64) -> (f64, f64) {
        // Loss and derivative share the clamped exponential; bit-equal
        // to the separate calls.
        let m = m.clamp(-MARGIN_CLAMP, MARGIN_CLAMP);
        let e = m.exp();
        (e - y * m, e - y)
    }

    #[inline]
    fn d2loss(m: f64, _y: f64) -> Option<f64> {
        Some(m.clamp(-MARGIN_CLAMP, MARGIN_CLAMP).exp())
    }

    #[inline]
    fn predict(m: f64) -> f64 {
        m.clamp(-MARGIN_CLAMP, MARGIN_CLAMP).exp()
    }

    #[inline]
    fn example_error(m: f64, y: f64) -> f64 {
        let rate = Self::predict(m);
        (rate - y) * (rate - y)
    }

    fn label_domain() -> blinkml_data::LabelDomain {
        blinkml_data::LabelDomain::NonNegativeCount
    }
}

/// L2-regularized Poisson regression.
pub type PoissonRegressionSpec = GlmSpec<PoissonFamily>;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mcs::ModelClassSpec;
    use crate::models::glm::test_support::{check_gradient, check_grads_mean};
    use blinkml_data::generators::synthetic_poisson;
    use blinkml_optim::OptimOptions;

    #[test]
    fn gradient_matches_finite_differences() {
        let (data, _) = synthetic_poisson(300, 4, 1);
        let spec = PoissonRegressionSpec::new(1e-3);
        let theta = vec![0.1, -0.1, 0.2, 0.0];
        check_gradient(&spec, &theta, &data, 1e-5);
        check_grads_mean(&spec, &theta, &data, 1e-10);
    }

    #[test]
    fn training_approaches_ground_truth() {
        let (data, w) = synthetic_poisson(30_000, 4, 2);
        let spec = PoissonRegressionSpec::new(1e-5);
        let model = spec.train(&data, None, &OptimOptions::default()).unwrap();
        assert!(model.converged);
        for (t, wi) in model.parameters().iter().zip(&w) {
            assert!((t - wi).abs() < 0.05, "{t} vs {wi}");
        }
    }

    #[test]
    fn loss_is_clamped_against_overflow() {
        assert!(PoissonFamily::loss(1e6, 1.0).is_finite());
        assert!(PoissonFamily::dloss(1e6, 1.0).is_finite());
        assert!(PoissonFamily::predict(1e6).is_finite());
    }

    #[test]
    fn predictions_are_rates() {
        let spec = PoissonRegressionSpec::new(0.0);
        let x = blinkml_data::DenseVec::new(vec![1.0, 0.0]);
        let theta = vec![std::f64::consts::LN_2, 5.0];
        let p = spec.predict(&theta, &x);
        assert!((p - 2.0).abs() < 1e-12);
    }

    #[test]
    fn diff_uses_rate_scale() {
        let (data, _) = synthetic_poisson(1_000, 3, 3);
        let spec = PoissonRegressionSpec::new(0.0);
        let a = vec![0.0, 0.0, 0.0];
        let v = spec.diff(&a, &a, &data);
        assert_eq!(v, 0.0);
        let b = vec![0.1, 0.0, 0.0];
        assert!(spec.diff(&a, &b, &data) > 0.0);
    }
}
