//! Pilot-artifact cache for the serving layer: a keyed LRU plus an
//! in-flight coalescing map.
//!
//! The cache stores the ε-independent pilot artifacts
//! ([`PilotState`](crate::coordinator::PilotState): the initial model
//! `m₀` and its Fisher statistics) keyed by
//! `(dataset_version, epoch, n₀, seed)` — exactly the inputs the pilot
//! phase depends on. Three invariants carry the serving layer's
//! correctness:
//!
//! * **No stale pilots.** The dataset version *and epoch* are part of
//!   the key, so a pilot trained on one pool state can never be served
//!   for another, and eviction only ever costs time (the pilot is
//!   retrained bit-identically on the next miss), never changes a
//!   result.
//! * **Eager retirement.** Streaming datasets carry a per-dataset
//!   epoch **floor** ([`PilotCache::retire`]): entries below it are
//!   dropped immediately, and — the mid-coalesce guarantee — a leader
//!   that *completes* a pilot for a below-floor epoch still publishes
//!   to its waiters (their responses honestly describe the snapshot
//!   they were computed on) but the pilot is **not** admitted to the
//!   LRU, so no later query can be served from it.
//! * **No leaked in-flight entries.** A miss registers the key in the
//!   coalescing map before training; every exit path — success, train
//!   error, worker panic — removes the entry and publishes a terminal
//!   result to the waiters. A failure therefore never wedges later
//!   queries for the same key: the next arrival simply becomes the new
//!   leader.

use crate::coordinator::PilotState;
use crate::serve::ServeError;
use std::collections::{BTreeMap, HashMap};
use std::sync::{Arc, Condvar, Mutex};

/// Cache key for pilot artifacts:
/// `(dataset_version, epoch, n₀, seed)`.
///
/// `epoch` is the streaming pool's snapshot epoch (always 0 for static
/// shards). `n₀` is the *effective* initial sample size
/// (`min(initial_sample_size, N)`), matching what the coordinator
/// actually trains on, so two configured sizes that clamp to the same
/// `n₀` share one pilot — the same rule `Session` uses.
pub type PilotKey = (u64, u64, usize, u64);

/// A cache image crossing the warm-state sidecar boundary: every
/// entry in recency order (oldest first) plus the per-dataset epoch
/// floors.
pub type WarmImage = (Vec<(PilotKey, Arc<PilotState>)>, HashMap<u64, u64>);

/// A keyed LRU over pilot artifacts.
///
/// Eviction is least-recently-*used* (hits refresh recency), with a
/// hard capacity. Entries live in a `HashMap` stamped with a monotonic
/// use tick; a `BTreeMap` keyed by tick mirrors the recency order, so
/// the victim is an `O(log len)` pop of the smallest tick instead of a
/// full scan — with a grid sweep per query, servers now see pilot
/// traffic per *grid point*, and the old `O(len)` eviction scan turned
/// insert-heavy phases quadratic. Ticks are unique (one per operation),
/// so the ordered index names exactly one victim — the same entry the
/// scan used to pick.
#[derive(Debug)]
pub struct PilotLru {
    capacity: usize,
    tick: u64,
    entries: HashMap<PilotKey, (Arc<PilotState>, u64)>,
    /// Recency index: tick → key, mirroring `entries`' tick stamps.
    by_tick: BTreeMap<u64, PilotKey>,
    evictions: u64,
}

impl PilotLru {
    /// Empty LRU holding at most `capacity` pilots.
    ///
    /// # Panics
    /// Panics if `capacity` is 0 (validated away by
    /// [`ServeConfig::validate`](crate::config::ServeConfig::validate)).
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "pilot cache capacity must be at least 1");
        PilotLru {
            capacity,
            tick: 0,
            entries: HashMap::new(),
            by_tick: BTreeMap::new(),
            evictions: 0,
        }
    }

    /// Look up `key`, refreshing its recency on a hit.
    pub fn get(&mut self, key: &PilotKey) -> Option<Arc<PilotState>> {
        self.tick += 1;
        let tick = self.tick;
        let entry = self.entries.get_mut(key)?;
        self.by_tick.remove(&entry.1);
        entry.1 = tick;
        self.by_tick.insert(tick, *key);
        Some(entry.0.clone())
    }

    /// Insert (or refresh) `key`, evicting the least-recently-used
    /// entry when the cache is over capacity.
    pub fn insert(&mut self, key: PilotKey, pilot: Arc<PilotState>) {
        self.tick += 1;
        if let Some((_, old_tick)) = self.entries.insert(key, (pilot, self.tick)) {
            self.by_tick.remove(&old_tick);
        }
        self.by_tick.insert(self.tick, key);
        while self.entries.len() > self.capacity {
            let (_, oldest) = self
                .by_tick
                .pop_first()
                .expect("recency index mirrors entries");
            self.entries.remove(&oldest);
            self.evictions += 1;
        }
    }

    /// Number of cached pilots.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is cached.
    #[allow(dead_code)]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total evictions since construction.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Drop every entry of `dataset` with an epoch below `floor`,
    /// returning how many were retired. Retirements are counted
    /// separately from capacity evictions.
    pub fn retire(&mut self, dataset: u64, floor: u64) -> usize {
        let victims: Vec<PilotKey> = self
            .entries
            .keys()
            .filter(|k| k.0 == dataset && k.1 < floor)
            .copied()
            .collect();
        for key in &victims {
            if let Some((_, tick)) = self.entries.remove(key) {
                self.by_tick.remove(&tick);
            }
        }
        victims.len()
    }

    /// Drop every cached pilot (results are unaffected; subsequent
    /// queries retrain on demand).
    pub fn clear(&mut self) {
        self.entries.clear();
        self.by_tick.clear();
    }

    /// Every entry in recency order, **oldest first** — replaying the
    /// list through [`PilotLru::insert`] reproduces the same eviction
    /// order, which is how the warm-state sidecar round-trips recency.
    pub fn export(&self) -> Vec<(PilotKey, Arc<PilotState>)> {
        self.by_tick
            .values()
            .map(|key| (*key, self.entries[key].0.clone()))
            .collect()
    }
}

/// The published terminal result of one in-flight pilot computation.
type PilotResult = Result<Arc<PilotState>, ServeError>;

/// One in-flight pilot computation: the leader publishes exactly one
/// terminal result; coalesced waiters block on the condvar.
#[derive(Debug, Default)]
pub struct Inflight {
    slot: Mutex<Option<PilotResult>>,
    cv: Condvar,
}

impl Inflight {
    /// Publish the terminal result and wake every waiter. Called once
    /// by the leader (on success, train error, or caught panic).
    pub fn publish(&self, result: PilotResult) {
        let mut slot = self.slot.lock().unwrap_or_else(|e| e.into_inner());
        debug_assert!(slot.is_none(), "in-flight pilot published twice");
        *slot = Some(result);
        self.cv.notify_all();
    }

    /// Block until the leader publishes, then return a clone of the
    /// terminal result.
    pub fn wait(&self) -> PilotResult {
        let mut slot = self.slot.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(result) = slot.as_ref() {
                return result.clone();
            }
            slot = self.cv.wait(slot).unwrap_or_else(|e| e.into_inner());
        }
    }
}

/// The serving layer's shared pilot-cache state: LRU + coalescing map
/// behind one mutex (both maps are touched together on every
/// resolution, so finer locking buys nothing).
#[derive(Debug)]
pub struct PilotCache {
    state: Mutex<CacheState>,
}

#[derive(Debug)]
struct CacheState {
    lru: PilotLru,
    inflight: HashMap<PilotKey, Arc<Inflight>>,
    /// Per-dataset epoch floor: entries (and completions) below it are
    /// never admitted. Monotone per dataset.
    floors: HashMap<u64, u64>,
    /// Entries dropped by [`PilotCache::retire`] (floor advances).
    retired: u64,
}

/// How a worker should obtain the pilot for its query — the outcome of
/// one [`PilotCache::resolve`] call.
#[derive(Debug)]
pub enum PilotTicket {
    /// Cache hit: use these artifacts directly.
    Cached(Arc<PilotState>),
    /// Another worker is training this pilot right now: wait on the
    /// in-flight entry.
    Wait(Arc<Inflight>),
    /// This worker is the leader: train the pilot, then call
    /// [`PilotCache::complete`] (or [`PilotCache::fail`]) with the key.
    Lead,
}

impl PilotCache {
    /// Empty cache with the given LRU capacity.
    pub fn new(capacity: usize) -> Self {
        PilotCache {
            state: Mutex::new(CacheState {
                lru: PilotLru::new(capacity),
                inflight: HashMap::new(),
                floors: HashMap::new(),
                retired: 0,
            }),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, CacheState> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Resolve `key` to a pilot source: a cached value, an in-flight
    /// computation to wait on, or leadership of a fresh computation
    /// (which registers the in-flight entry before returning, so every
    /// concurrent query for the same key coalesces onto it).
    pub fn resolve(&self, key: PilotKey) -> PilotTicket {
        let mut state = self.lock();
        if let Some(pilot) = state.lru.get(&key) {
            return PilotTicket::Cached(pilot);
        }
        if let Some(inflight) = state.inflight.get(&key) {
            return PilotTicket::Wait(inflight.clone());
        }
        state.inflight.insert(key, Arc::new(Inflight::default()));
        PilotTicket::Lead
    }

    /// Look up `key` in the LRU only (refreshing recency on a hit) —
    /// never registers leadership. The streaming drift ladder uses this
    /// to scan older epochs for a reusable pilot without committing to
    /// train one.
    pub fn lookup(&self, key: &PilotKey) -> Option<Arc<PilotState>> {
        self.lock().lru.get(key)
    }

    /// Leader success path: insert the pilot into the LRU (evicting if
    /// over capacity), retire the in-flight entry, and publish to the
    /// waiters.
    ///
    /// The mid-coalesce guarantee: when the dataset's epoch floor
    /// advanced past `key`'s epoch while this pilot was training, the
    /// waiters are still served (their responses are honest for the
    /// snapshot they asked about) but the pilot is **not** admitted to
    /// the LRU — a superseded epoch can never be served from cache
    /// afterwards.
    pub fn complete(&self, key: PilotKey, pilot: Arc<PilotState>) {
        let inflight = {
            let mut state = self.lock();
            let admit = state.floors.get(&key.0).is_none_or(|&floor| key.1 >= floor);
            if admit {
                state.lru.insert(key, pilot.clone());
            }
            state.inflight.remove(&key)
        };
        if let Some(inflight) = inflight {
            inflight.publish(Ok(pilot));
        }
    }

    /// Advance `dataset`'s epoch floor to `floor` (monotone: a lower
    /// value than the current floor is ignored) and eagerly drop every
    /// cached entry below it. Returns how many entries were retired.
    pub fn retire(&self, dataset: u64, floor: u64) -> usize {
        let mut state = self.lock();
        let entry = state.floors.entry(dataset).or_insert(0);
        if floor <= *entry {
            return 0;
        }
        *entry = floor;
        let dropped = state.lru.retire(dataset, floor);
        state.retired += dropped as u64;
        dropped
    }

    /// Entries dropped by floor advances so far.
    pub fn retired(&self) -> u64 {
        self.lock().retired
    }

    /// Leader failure path (train error or caught panic): retire the
    /// in-flight entry *without* caching anything and publish the error
    /// to the waiters. The next query for this key becomes a fresh
    /// leader — a failed pilot never poisons the cache or wedges the
    /// queue.
    pub fn fail(&self, key: PilotKey, error: ServeError) {
        let inflight = self.lock().inflight.remove(&key);
        if let Some(inflight) = inflight {
            inflight.publish(Err(error));
        }
    }

    /// Number of cached pilots.
    pub fn cached(&self) -> usize {
        self.lock().lru.len()
    }

    /// Number of live in-flight entries (0 whenever the server is
    /// idle — the leak invariant the proptests pin).
    pub fn inflight(&self) -> usize {
        self.lock().inflight.len()
    }

    /// Total LRU evictions so far.
    pub fn evictions(&self) -> u64 {
        self.lock().lru.evictions()
    }

    /// Drop every cached pilot (in-flight entries are untouched).
    pub fn clear(&self) {
        self.lock().lru.clear();
    }

    /// Snapshot the cache for the warm-state sidecar: every entry in
    /// recency order (oldest first) plus the per-dataset epoch floors.
    pub fn export(&self) -> WarmImage {
        let state = self.lock();
        (state.lru.export(), state.floors.clone())
    }

    /// Seed the cache from a persisted sidecar: floors are applied
    /// first (monotone, like [`PilotCache::retire`]), then entries are
    /// inserted oldest-first so recency survives the roundtrip. An
    /// entry below its dataset's floor is never admitted. Returns how
    /// many entries were admitted.
    pub fn seed(
        &self,
        entries: Vec<(PilotKey, Arc<PilotState>)>,
        floors: HashMap<u64, u64>,
    ) -> usize {
        let mut state = self.lock();
        for (dataset, floor) in floors {
            let entry = state.floors.entry(dataset).or_insert(0);
            *entry = (*entry).max(floor);
        }
        let mut admitted = 0;
        for (key, pilot) in entries {
            if state.floors.get(&key.0).is_none_or(|&floor| key.1 >= floor) {
                state.lru.insert(key, pilot);
                admitted += 1;
            }
        }
        admitted
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mcs::TrainedModel;

    fn pilot(n0: usize) -> Arc<PilotState> {
        Arc::new(PilotState {
            model: TrainedModel::new(vec![n0 as f64], n0, 0, true, 0.0),
            stats: None,
            n0,
        })
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut lru = PilotLru::new(2);
        lru.insert((0, 0, 10, 1), pilot(10));
        lru.insert((0, 0, 20, 1), pilot(20));
        // Touch the first entry so the second becomes the LRU victim.
        assert!(lru.get(&(0, 0, 10, 1)).is_some());
        lru.insert((0, 0, 30, 1), pilot(30));
        assert_eq!(lru.len(), 2);
        assert!(lru.get(&(0, 0, 10, 1)).is_some(), "recently used survives");
        assert!(lru.get(&(0, 0, 20, 1)).is_none(), "LRU entry evicted");
        assert!(lru.get(&(0, 0, 30, 1)).is_some());
        assert_eq!(lru.evictions(), 1);
    }

    #[test]
    fn lru_capacity_one_holds_the_latest() {
        let mut lru = PilotLru::new(1);
        for n0 in [10, 20, 30] {
            lru.insert((0, 0, n0, 1), pilot(n0));
            assert_eq!(lru.len(), 1);
            assert_eq!(lru.get(&(0, 0, n0, 1)).unwrap().n0, n0);
        }
        assert_eq!(lru.evictions(), 2);
        lru.clear();
        assert!(lru.is_empty());
    }

    /// The ordered-index eviction must pick exactly the victim the old
    /// `O(len)` min-tick scan picked, on any interleaving of hits,
    /// refreshes, and inserts. A reference model (plain vector, scan
    /// eviction) replays a deterministic pseudo-random op sequence next
    /// to the real LRU; contents must stay identical after every op.
    #[test]
    fn eviction_order_matches_reference_scan() {
        struct Reference {
            capacity: usize,
            tick: u64,
            entries: Vec<(PilotKey, u64)>,
            evictions: u64,
        }
        impl Reference {
            fn get(&mut self, key: &PilotKey) -> bool {
                self.tick += 1;
                let tick = self.tick;
                if let Some(e) = self.entries.iter_mut().find(|(k, _)| k == key) {
                    e.1 = tick;
                    true
                } else {
                    false
                }
            }
            fn insert(&mut self, key: PilotKey) {
                self.tick += 1;
                let tick = self.tick;
                if let Some(e) = self.entries.iter_mut().find(|(k, _)| *k == key) {
                    e.1 = tick;
                } else {
                    self.entries.push((key, tick));
                }
                while self.entries.len() > self.capacity {
                    let oldest = self
                        .entries
                        .iter()
                        .enumerate()
                        .min_by_key(|(_, (_, used))| *used)
                        .map(|(i, _)| i)
                        .expect("non-empty over capacity");
                    self.entries.remove(oldest);
                    self.evictions += 1;
                }
            }
        }

        let mut lru = PilotLru::new(3);
        let mut reference = Reference {
            capacity: 3,
            tick: 0,
            entries: Vec::new(),
            evictions: 0,
        };
        // Deterministic LCG op stream over a keyspace larger than the
        // capacity, so hits, misses, refreshes, and evictions all occur.
        let mut state = 0x2545F4914F6CDD1Du64;
        for _ in 0..500 {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let key: PilotKey = (0, 0, (state >> 33) as usize % 7, 1);
            if state & 1 == 0 {
                assert_eq!(lru.get(&key).is_some(), reference.get(&key));
            } else {
                lru.insert(key, pilot(key.2));
                reference.insert(key);
            }
            assert_eq!(lru.len(), reference.entries.len());
            assert_eq!(lru.evictions(), reference.evictions);
            for (k, _) in &reference.entries {
                assert!(lru.entries.contains_key(k), "contents diverged at {k:?}");
            }
        }
        assert!(reference.evictions > 0, "sequence must exercise eviction");
    }

    #[test]
    fn keys_separate_dataset_versions() {
        let mut lru = PilotLru::new(4);
        lru.insert((1, 0, 10, 7), pilot(10));
        assert!(
            lru.get(&(2, 0, 10, 7)).is_none(),
            "other version never hits"
        );
        assert!(lru.get(&(1, 1, 10, 7)).is_none(), "other epoch never hits");
        assert!(lru.get(&(1, 0, 10, 7)).is_some());
    }

    #[test]
    fn resolve_coalesces_and_completes() {
        let cache = PilotCache::new(4);
        let key = (0, 0, 100, 5);
        assert!(matches!(cache.resolve(key), PilotTicket::Lead));
        // Second resolver for the same key coalesces.
        let waiter = match cache.resolve(key) {
            PilotTicket::Wait(w) => w,
            other => panic!("expected Wait, got {other:?}"),
        };
        assert_eq!(cache.inflight(), 1);
        cache.complete(key, pilot(100));
        assert_eq!(cache.inflight(), 0);
        assert_eq!(cache.cached(), 1);
        assert_eq!(waiter.wait().expect("published pilot").n0, 100);
        // Third resolver now hits the LRU.
        assert!(matches!(cache.resolve(key), PilotTicket::Cached(_)));
    }

    #[test]
    fn failure_retires_inflight_without_caching() {
        let cache = PilotCache::new(4);
        let key = (0, 0, 100, 5);
        assert!(matches!(cache.resolve(key), PilotTicket::Lead));
        let waiter = match cache.resolve(key) {
            PilotTicket::Wait(w) => w,
            other => panic!("expected Wait, got {other:?}"),
        };
        cache.fail(key, ServeError::WorkerPanicked("boom".into()));
        assert_eq!(cache.inflight(), 0, "failure must retire the entry");
        assert_eq!(cache.cached(), 0, "failure must not cache a pilot");
        assert!(matches!(waiter.wait(), Err(ServeError::WorkerPanicked(_))));
        // The key is free again: the next query leads a fresh attempt.
        assert!(matches!(cache.resolve(key), PilotTicket::Lead));
        cache.complete(key, pilot(100));
    }

    #[test]
    fn retire_drops_superseded_epochs_eagerly() {
        let cache = PilotCache::new(8);
        for epoch in 0..3u64 {
            let key = (7, epoch, 100, 5);
            assert!(matches!(cache.resolve(key), PilotTicket::Lead));
            cache.complete(key, pilot(100));
        }
        // Another dataset's entries are untouched by dataset 7's floor.
        let other = (8, 0, 100, 5);
        assert!(matches!(cache.resolve(other), PilotTicket::Lead));
        cache.complete(other, pilot(100));
        assert_eq!(cache.cached(), 4);

        assert_eq!(cache.retire(7, 2), 2);
        assert_eq!(cache.retired(), 2);
        assert_eq!(cache.cached(), 2);
        assert!(cache.lookup(&(7, 0, 100, 5)).is_none());
        assert!(cache.lookup(&(7, 1, 100, 5)).is_none());
        assert!(cache.lookup(&(7, 2, 100, 5)).is_some());
        assert!(cache.lookup(&(8, 0, 100, 5)).is_some());

        // The floor is monotone: a lower retire is a no-op.
        assert_eq!(cache.retire(7, 1), 0);
        assert!(cache.lookup(&(7, 2, 100, 5)).is_some());
    }

    #[test]
    fn mid_coalesce_completion_below_the_floor_serves_waiters_without_caching() {
        let cache = PilotCache::new(8);
        let key = (3, 5, 100, 9);
        // A leader starts training the epoch-5 pilot...
        assert!(matches!(cache.resolve(key), PilotTicket::Lead));
        let waiter = match cache.resolve(key) {
            PilotTicket::Wait(w) => w,
            other => panic!("expected Wait, got {other:?}"),
        };
        // ...the epoch advances past it while it trains...
        assert_eq!(cache.retire(3, 6), 0);
        // ...and its completion still serves the coalesced waiter but
        // is never admitted to the LRU.
        cache.complete(key, pilot(100));
        assert_eq!(waiter.wait().expect("published pilot").n0, 100);
        assert_eq!(cache.inflight(), 0);
        assert!(cache.lookup(&key).is_none(), "superseded pilot cached");
        assert_eq!(cache.cached(), 0);

        // At or above the floor, completions are admitted as usual.
        let fresh = (3, 6, 100, 9);
        assert!(matches!(cache.resolve(fresh), PilotTicket::Lead));
        cache.complete(fresh, pilot(100));
        assert!(cache.lookup(&fresh).is_some());
    }

    #[test]
    fn lookup_never_registers_leadership() {
        let cache = PilotCache::new(4);
        let key = (0, 2, 50, 1);
        assert!(cache.lookup(&key).is_none());
        assert_eq!(cache.inflight(), 0, "lookup must not lead");
        assert!(matches!(cache.resolve(key), PilotTicket::Lead));
    }
}
