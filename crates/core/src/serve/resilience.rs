//! Cooperative cancellation, the degradation ladder, and deterministic
//! retry backoff for the serving layer.
//!
//! BlinkML's core contract makes graceful degradation *possible*: every
//! sample size `n` carries an honest `(ε, δ)` guarantee, so a
//! deadline-pressed server never has to choose between blocking and
//! failing — it can move along the guarantee curve and return a cheaper
//! model with its true, recomputed ε. This module supplies the
//! mechanisms:
//!
//! * [`CancelToken`] — a per-query deadline plus manually trippable
//!   pressure flags, polled at coordinator phase boundaries (pilot
//!   train → statistics → sample-size search → final train) and inside
//!   optimizer iteration loops via
//!   [`StopCheck`](blinkml_optim::StopCheck).
//! * [`DegradationRung`] — which step of the ladder a response came
//!   from: the full workflow, a relaxed final model, or the pilot.
//! * [`retry_backoff`] — seeded jittered exponential backoff for
//!   retrying transiently-failed jobs, deterministic per
//!   `(seed, attempt)`.
//! * A thread-local **active token** surface
//!   ([`trip_active_deadline`] / [`relax_active_deadline`]) so fault
//!   plans can stage exact deadline races from inside training hooks —
//!   no wall-clock dependence in tests.

use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How much deadline pressure a query is under at a checkpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Pressure {
    /// No pressure: proceed with the full workflow.
    None,
    /// The deadline is close (within the relax margin) or a soft trip
    /// was requested: downgrade the final training to a relaxed sample
    /// size, keeping an honest ε from the sample-size curve.
    Relax,
    /// The deadline has passed (or a hard trip was requested): stop as
    /// soon as a rung with an honest guarantee — or a typed error — is
    /// reachable.
    Expired,
}

/// Per-query cooperative cancellation token.
///
/// Combines an optional wall-clock deadline with two manually
/// trippable flags. The coordinator polls [`CancelToken::pressure`] at
/// phase boundaries and [`CancelToken::expired`] once per optimizer
/// iteration; nothing is ever interrupted mid-kernel, so an untripped
/// token changes no result bit.
#[derive(Debug)]
pub struct CancelToken {
    deadline: Option<Instant>,
    relax_margin: Duration,
    relax: AtomicBool,
    expire: AtomicBool,
}

impl CancelToken {
    /// A token that never fires on its own (manual trips still work).
    pub fn unbounded() -> Self {
        CancelToken {
            deadline: None,
            relax_margin: Duration::ZERO,
            relax: AtomicBool::new(false),
            expire: AtomicBool::new(false),
        }
    }

    /// A token that expires at `deadline` and reports [`Pressure::Relax`]
    /// once the remaining time falls below `relax_margin`.
    pub fn with_deadline(deadline: Instant, relax_margin: Duration) -> Self {
        CancelToken {
            deadline: Some(deadline),
            relax_margin,
            relax: AtomicBool::new(false),
            expire: AtomicBool::new(false),
        }
    }

    /// Manually force [`Pressure::Expired`] (fault injection, shutdown).
    pub fn trip_expired(&self) {
        self.expire.store(true, Ordering::Release);
    }

    /// Manually force at least [`Pressure::Relax`] (fault injection).
    pub fn trip_relax(&self) {
        self.relax.store(true, Ordering::Release);
    }

    /// Whether the token demands a stop (hard trip or deadline passed).
    /// This is the probe the optimizer's per-iteration
    /// [`StopCheck`](blinkml_optim::StopCheck) polls.
    pub fn expired(&self) -> bool {
        if self.expire.load(Ordering::Acquire) {
            return true;
        }
        match self.deadline {
            Some(d) => Instant::now() >= d,
            None => false,
        }
    }

    /// Current pressure level for a phase-boundary checkpoint.
    pub fn pressure(&self) -> Pressure {
        if self.expired() {
            return Pressure::Expired;
        }
        if self.relax.load(Ordering::Acquire) {
            return Pressure::Relax;
        }
        match self.deadline {
            Some(d) if Instant::now() + self.relax_margin >= d => Pressure::Relax,
            _ => Pressure::None,
        }
    }
}

/// Which rung of the degradation ladder produced a served response.
///
/// The ladder, top to bottom: [`Full`](DegradationRung::Full) →
/// [`RelaxedFinal`](DegradationRung::RelaxedFinal) →
/// [`Pilot`](DegradationRung::Pilot) → a typed error (fail-fast);
/// streaming datasets add the drift branch
/// [`StalePilot`](DegradationRung::StalePilot). The reported ε is
/// always the **achieved** guarantee of the returned model, recomputed
/// for its actual sample size — never the requested contract.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DegradationRung {
    /// The full BlinkML workflow ran: pilot, search, final model at the
    /// chosen minimum `n` (or the pilot itself when it already met the
    /// contract).
    Full,
    /// Deadline pressure at the final-train boundary: the final model
    /// was trained at a relaxed sample size between `n₀` and the chosen
    /// `n`, and the response carries the honest ε the sample-size curve
    /// assigns to that size.
    RelaxedFinal,
    /// The cached/just-trained pilot `m₀` was returned with its honest
    /// ε₀ (deadline expired after the accuracy estimate, or the query
    /// was shed into the pilot-only lane).
    Pilot,
    /// A streaming dataset's cached pilot from an older epoch was
    /// served between the drift thresholds: the response carries the
    /// honestly-recomputed ε of the `curve_epsilon_at` oracle at
    /// `n = n₀` **on the pilot's own snapshot** — an inflated but true
    /// guarantee for the data the pilot actually saw.
    StalePilot,
}

impl DegradationRung {
    /// Human-readable name used in reports.
    pub fn name(&self) -> &'static str {
        match self {
            DegradationRung::Full => "Full",
            DegradationRung::RelaxedFinal => "RelaxedFinal",
            DegradationRung::Pilot => "Pilot",
            DegradationRung::StalePilot => "StalePilot",
        }
    }

    /// Whether this rung is below the full workflow.
    pub fn is_degraded(&self) -> bool {
        !matches!(self, DegradationRung::Full)
    }
}

/// The relaxed final-training sample size for the
/// [`RelaxedFinal`](DegradationRung::RelaxedFinal) rung: `n₀ +
/// ⌈fraction · (n − n₀)⌉`, clamped to `[n₀, n]`. Deterministic in its
/// inputs, so a cold coordinator replay for the rung lands on the same
/// size (and hence the bit-identical curve ε).
pub fn relaxed_sample_size(n0: usize, n: usize, fraction: f64) -> usize {
    if n <= n0 {
        return n;
    }
    let span = (n - n0) as f64;
    let step = (span * fraction.clamp(0.0, 1.0)).ceil() as usize;
    (n0 + step).min(n)
}

/// Jittered exponential backoff before retry `attempt` (1-based):
/// `base · 2^(attempt−1) · u` with `u ∈ [0.5, 1.5)` drawn from a
/// splitmix64 hash of `(seed, attempt)` — deterministic, so retry
/// schedules are replayable.
pub fn retry_backoff(base: Duration, attempt: u32, seed: u64) -> Duration {
    let shift = attempt.saturating_sub(1).min(16);
    let exp = base.saturating_mul(1u32 << shift);
    let bits = splitmix64(seed ^ (attempt as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    let unit = (bits >> 11) as f64 / (1u64 << 53) as f64; // [0, 1)
    exp.mul_f64(0.5 + unit)
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

thread_local! {
    /// The token of the query this worker thread is currently running —
    /// the deterministic deadline-race surface for fault plans.
    static ACTIVE_TOKEN: RefCell<Option<Arc<CancelToken>>> = const { RefCell::new(None) };
}

/// RAII installation of a worker's current query token into the
/// thread-local active slot; cleared on drop (including unwinds out of
/// a contained panic).
pub(crate) struct ActiveTokenGuard;

impl ActiveTokenGuard {
    pub(crate) fn install(token: &Arc<CancelToken>) -> Self {
        ACTIVE_TOKEN.with(|t| *t.borrow_mut() = Some(token.clone()));
        ActiveTokenGuard
    }
}

impl Drop for ActiveTokenGuard {
    fn drop(&mut self) {
        ACTIVE_TOKEN.with(|t| *t.borrow_mut() = None);
    }
}

/// Fault-injection surface: hard-trip the deadline of the query the
/// **current worker thread** is processing. Returns whether a token was
/// installed. Deterministic replacement for racing a wall clock: a
/// training hook calls this at an exact phase, so "the deadline expired
/// during phase X" is a scriptable event.
pub fn trip_active_deadline() -> bool {
    ACTIVE_TOKEN.with(|t| match &*t.borrow() {
        Some(token) => {
            token.trip_expired();
            true
        }
        None => false,
    })
}

/// Fault-injection surface: soft-trip (relax) the deadline of the query
/// the current worker thread is processing. Returns whether a token was
/// installed.
pub fn relax_active_deadline() -> bool {
    ACTIVE_TOKEN.with(|t| match &*t.borrow() {
        Some(token) => {
            token.trip_relax();
            true
        }
        None => false,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unbounded_token_never_fires() {
        let t = CancelToken::unbounded();
        assert!(!t.expired());
        assert_eq!(t.pressure(), Pressure::None);
    }

    #[test]
    fn manual_trips_escalate() {
        let t = CancelToken::unbounded();
        t.trip_relax();
        assert_eq!(t.pressure(), Pressure::Relax);
        assert!(!t.expired());
        t.trip_expired();
        assert_eq!(t.pressure(), Pressure::Expired);
        assert!(t.expired());
    }

    #[test]
    fn wall_clock_deadline_fires() {
        let past = Instant::now() - Duration::from_millis(1);
        let t = CancelToken::with_deadline(past, Duration::ZERO);
        assert!(t.expired());
        assert_eq!(t.pressure(), Pressure::Expired);

        let far = Instant::now() + Duration::from_secs(3600);
        let t = CancelToken::with_deadline(far, Duration::ZERO);
        assert!(!t.expired());
        assert_eq!(t.pressure(), Pressure::None);
        // A margin wider than the remaining time reports Relax.
        let t = CancelToken::with_deadline(
            Instant::now() + Duration::from_millis(10),
            Duration::from_secs(3600),
        );
        assert_eq!(t.pressure(), Pressure::Relax);
    }

    #[test]
    fn relaxed_size_is_clamped_and_monotone() {
        assert_eq!(relaxed_sample_size(100, 100, 0.25), 100);
        assert_eq!(relaxed_sample_size(100, 50, 0.25), 50);
        let r = relaxed_sample_size(100, 1100, 0.25);
        assert_eq!(r, 100 + 250);
        assert_eq!(relaxed_sample_size(100, 1100, 1.0), 1100);
        assert_eq!(relaxed_sample_size(100, 1100, 0.0), 100);
        // ceil: any positive fraction moves past n₀.
        assert_eq!(relaxed_sample_size(100, 101, 0.01), 101);
    }

    #[test]
    fn backoff_is_deterministic_and_bounded() {
        let base = Duration::from_millis(10);
        let a = retry_backoff(base, 1, 42);
        let b = retry_backoff(base, 1, 42);
        assert_eq!(a, b);
        assert!(a >= base / 2 && a < base * 3 / 2, "{a:?}");
        let c = retry_backoff(base, 3, 42);
        assert!(c >= base * 2 && c < base * 6, "{c:?}");
        assert_ne!(retry_backoff(base, 1, 1), retry_backoff(base, 1, 2));
    }

    #[test]
    fn active_token_trips_through_thread_local() {
        assert!(!trip_active_deadline(), "no token installed");
        let token = Arc::new(CancelToken::unbounded());
        {
            let _guard = ActiveTokenGuard::install(&token);
            assert!(relax_active_deadline());
            assert_eq!(token.pressure(), Pressure::Relax);
            assert!(trip_active_deadline());
            assert!(token.expired());
        }
        assert!(!trip_active_deadline(), "guard cleared the slot");
    }
}
