//! Warm-state sidecar: persisting the pilot cache across restarts.
//!
//! A [`Server`](crate::serve::Server) configured with
//! [`ServeConfig::pilot_sidecar`](crate::config::ServeConfig::pilot_sidecar)
//! writes its pilot LRU (every `PilotKey → PilotState` entry, in
//! recency order, plus the per-dataset epoch floors) to one file at
//! shutdown and reloads it at spawn, so a restarted server serves its
//! first queries from warm pilots instead of retraining them.
//!
//! Three properties carry the warm-restore contract:
//!
//! * **Bit-exactness.** A pilot is serialized in its stored form —
//!   θ via `f64::to_bits`, the covariance factor kept explicit or
//!   implicit exactly as computed — so a query answered from a
//!   restored pilot is bit-identical to one answered from the original
//!   in-memory entry (which is itself bit-identical to a cold run).
//! * **Revalidation.** At load, entries are dropped unless their
//!   dataset id is registered with the restarting server and their
//!   epoch is at most the dataset's *recovered* epoch (a durable pool
//!   that lost an unsynced tail recovers to an earlier epoch; pilots
//!   for the lost epochs describe snapshots that no longer exist).
//!   Persisted floors are re-applied first, so retired epochs stay
//!   retired across restarts.
//! * **Best-effort load, atomic write.** The file is written via
//!   temp + rename (a crash mid-persist leaves the previous sidecar
//!   intact), and a missing or damaged sidecar is *ignored* at spawn —
//!   the server starts cold and every response is still correct, just
//!   slower. Durability of results never depends on the sidecar.

use crate::coordinator::PilotState;
use crate::grads::Grads;
use crate::mcs::TrainedModel;
use crate::serve::cache::{PilotKey, WarmImage};
use crate::stats::{Factor, ModelStatistics};
use blinkml_data::wal::{crc32, put_f64, put_u32, put_u64, put_usize, Decoder, WalError};
use blinkml_data::{SparseVec, WalRow};
use blinkml_linalg::Matrix;
use std::collections::HashMap;
use std::fs::{self, File};
use std::path::Path;
use std::sync::Arc;

/// Magic + format version prefix of a pilot sidecar file.
const SIDECAR_MAGIC: &[u8; 8] = b"BMLPILO1";

fn put_f64s(out: &mut Vec<u8>, xs: &[f64]) {
    put_usize(out, xs.len());
    for &x in xs {
        put_f64(out, x);
    }
}

fn f64s(dec: &mut Decoder<'_>) -> Result<Vec<f64>, WalError> {
    let len = dec.usize()?;
    if len.saturating_mul(8) > dec.remaining() {
        return Err(dec.corrupt("f64 vector length exceeds payload"));
    }
    (0..len).map(|_| dec.f64()).collect()
}

fn put_matrix(out: &mut Vec<u8>, m: &Matrix) {
    put_usize(out, m.rows());
    put_usize(out, m.cols());
    for &x in m.as_slice() {
        put_f64(out, x);
    }
}

fn matrix(dec: &mut Decoder<'_>) -> Result<Matrix, WalError> {
    let rows = dec.usize()?;
    let cols = dec.usize()?;
    let len = rows.saturating_mul(cols);
    if len.saturating_mul(8) > dec.remaining() {
        return Err(dec.corrupt("matrix size exceeds payload"));
    }
    let data = (0..len).map(|_| dec.f64()).collect::<Result<Vec<_>, _>>()?;
    Ok(Matrix::from_vec(rows, cols, data))
}

fn put_grads(out: &mut Vec<u8>, grads: &Grads) {
    match grads {
        Grads::Dense(m) => {
            out.push(0);
            put_matrix(out, m);
        }
        Grads::Sparse { rows, shift } => {
            out.push(1);
            put_usize(out, rows.len());
            for row in rows {
                row.encode_wal(out);
            }
            put_f64s(out, shift);
        }
    }
}

fn grads(dec: &mut Decoder<'_>) -> Result<Grads, WalError> {
    match dec.u8()? {
        0 => Ok(Grads::Dense(matrix(dec)?)),
        1 => {
            let n = dec.usize()?;
            if n > dec.remaining() {
                return Err(dec.corrupt("gradient row count exceeds payload"));
            }
            let rows = (0..n)
                .map(|_| SparseVec::decode_wal(dec))
                .collect::<Result<Vec<_>, _>>()?;
            let shift = f64s(dec)?;
            Ok(Grads::Sparse { rows, shift })
        }
        tag => Err(dec.corrupt(format!("unknown gradient encoding {tag}"))),
    }
}

fn put_stats(out: &mut Vec<u8>, stats: &ModelStatistics) {
    put_usize(out, stats.dim());
    match stats.factor() {
        Factor::Explicit(l) => {
            out.push(0);
            put_matrix(out, l);
        }
        Factor::Implicit {
            v,
            lambda,
            grads: g,
            beta,
        } => {
            out.push(1);
            put_matrix(out, v);
            put_f64s(out, lambda);
            put_grads(out, g);
            put_f64(out, *beta);
        }
    }
}

fn stats(dec: &mut Decoder<'_>) -> Result<ModelStatistics, WalError> {
    let dim = dec.usize()?;
    let factor = match dec.u8()? {
        0 => Factor::Explicit(matrix(dec)?),
        1 => {
            let v = matrix(dec)?;
            let lambda = f64s(dec)?;
            let g = grads(dec)?;
            let beta = dec.f64()?;
            Factor::Implicit {
                v,
                lambda,
                grads: g,
                beta,
            }
        }
        tag => return Err(dec.corrupt(format!("unknown factor encoding {tag}"))),
    };
    Ok(ModelStatistics::from_parts(dim, factor))
}

fn put_pilot(out: &mut Vec<u8>, key: &PilotKey, pilot: &PilotState) {
    put_u64(out, key.0);
    put_u64(out, key.1);
    put_usize(out, key.2);
    put_u64(out, key.3);
    put_f64s(out, pilot.model.parameters());
    put_usize(out, pilot.model.sample_size);
    put_usize(out, pilot.model.iterations);
    out.push(pilot.model.converged as u8);
    put_f64(out, pilot.model.objective_value);
    put_usize(out, pilot.n0);
    match &pilot.stats {
        None => out.push(0),
        Some(s) => {
            out.push(1);
            put_stats(out, s);
        }
    }
}

fn pilot(dec: &mut Decoder<'_>) -> Result<(PilotKey, PilotState), WalError> {
    let key = (dec.u64()?, dec.u64()?, dec.usize()?, dec.u64()?);
    let theta = f64s(dec)?;
    let sample_size = dec.usize()?;
    let iterations = dec.usize()?;
    let converged = match dec.u8()? {
        0 => false,
        1 => true,
        b => return Err(dec.corrupt(format!("invalid convergence flag {b}"))),
    };
    let objective_value = dec.f64()?;
    let n0 = dec.usize()?;
    let stats = match dec.u8()? {
        0 => None,
        1 => Some(stats(dec)?),
        b => return Err(dec.corrupt(format!("invalid statistics tag {b}"))),
    };
    Ok((
        key,
        PilotState {
            model: TrainedModel::new(theta, sample_size, iterations, converged, objective_value),
            stats,
            n0,
        },
    ))
}

/// Serialize the cache export (entries oldest-first plus floors) and
/// atomically replace `path` (temp + fsync + rename). Returns how many
/// entries were written.
pub(crate) fn save(
    path: &Path,
    entries: &[(PilotKey, Arc<PilotState>)],
    floors: &HashMap<u64, u64>,
) -> std::io::Result<usize> {
    let mut payload = Vec::new();
    // Sort floors so the same cache state always produces the same
    // bytes (HashMap iteration order is not deterministic).
    let mut sorted: Vec<(u64, u64)> = floors.iter().map(|(&d, &f)| (d, f)).collect();
    sorted.sort_unstable();
    put_usize(&mut payload, sorted.len());
    for (dataset, floor) in sorted {
        put_u64(&mut payload, dataset);
        put_u64(&mut payload, floor);
    }
    put_usize(&mut payload, entries.len());
    for (key, pilot) in entries {
        put_pilot(&mut payload, key, pilot);
    }

    let mut buf = Vec::with_capacity(SIDECAR_MAGIC.len() + 8 + payload.len());
    buf.extend_from_slice(SIDECAR_MAGIC);
    put_u32(&mut buf, payload.len() as u32);
    put_u32(&mut buf, crc32(&payload));
    buf.extend_from_slice(&payload);

    let tmp = path.with_extension("tmp");
    {
        use std::io::Write;
        let mut f = File::create(&tmp)?;
        f.write_all(&buf)?;
        f.sync_data()?;
    }
    fs::rename(&tmp, path)?;
    if let Some(dir) = path.parent() {
        if let Ok(d) = File::open(dir) {
            let _ = d.sync_all();
        }
    }
    Ok(entries.len())
}

/// Read and verify a sidecar file. Entries come back in the order they
/// were written (oldest-first), ready for
/// [`PilotCache::seed`](crate::serve::cache::PilotCache::seed).
pub(crate) fn load(path: &Path) -> Result<WarmImage, WalError> {
    let buf = fs::read(path)?;
    if buf.len() < SIDECAR_MAGIC.len() + 8 || &buf[..SIDECAR_MAGIC.len()] != SIDECAR_MAGIC {
        return Err(blinkml_data::wal::corrupt(0, "missing sidecar magic"));
    }
    let head = SIDECAR_MAGIC.len();
    let len = u32::from_le_bytes([buf[head], buf[head + 1], buf[head + 2], buf[head + 3]]);
    let crc = u32::from_le_bytes([buf[head + 4], buf[head + 5], buf[head + 6], buf[head + 7]]);
    if len as usize != buf.len() - head - 8 {
        return Err(blinkml_data::wal::corrupt(
            head as u64,
            "sidecar length mismatch",
        ));
    }
    let payload = &buf[head + 8..];
    if crc32(payload) != crc {
        return Err(blinkml_data::wal::corrupt(
            head as u64,
            "sidecar CRC mismatch",
        ));
    }

    let mut dec = Decoder::new(payload, (head + 8) as u64);
    let nfloors = dec.usize()?;
    if nfloors.saturating_mul(16) > dec.remaining() {
        return Err(dec.corrupt("floor count exceeds payload"));
    }
    let mut floors = HashMap::with_capacity(nfloors);
    for _ in 0..nfloors {
        let dataset = dec.u64()?;
        let floor = dec.u64()?;
        floors.insert(dataset, floor);
    }
    let nentries = dec.usize()?;
    if nentries > dec.remaining() {
        return Err(dec.corrupt("entry count exceeds payload"));
    }
    let mut entries = Vec::with_capacity(nentries);
    for _ in 0..nentries {
        let (key, state) = pilot(&mut dec)?;
        entries.push((key, Arc::new(state)));
    }
    dec.finish()?;
    Ok((entries, floors))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dense_pilot(seed: u64) -> PilotState {
        let theta: Vec<f64> = (0..4)
            .map(|i| (seed as f64 + 0.1) * (i as f64 + 1.0))
            .collect();
        PilotState {
            model: TrainedModel::new(theta, 100, 7, true, -0.52),
            stats: Some(ModelStatistics::from_parts(
                4,
                Factor::Explicit(Matrix::from_fn(4, 3, |i, j| {
                    (i * 3 + j) as f64 * 0.25 + seed as f64
                })),
            )),
            n0: 100,
        }
    }

    fn implicit_pilot() -> PilotState {
        let rows = vec![
            SparseVec::new(4, vec![0, 2], vec![1.5, -0.25]),
            SparseVec::new(4, vec![1], vec![0.75]),
        ];
        PilotState {
            model: TrainedModel::new(vec![0.1, -0.2, 0.3, -0.4], 50, 3, false, 1.25),
            stats: Some(ModelStatistics::from_parts(
                4,
                Factor::Implicit {
                    v: Matrix::from_fn(2, 2, |i, j| (i + j) as f64 + 0.5),
                    lambda: vec![2.0, 0.5],
                    grads: Grads::Sparse {
                        rows,
                        shift: vec![0.01, 0.02, 0.03, 0.04],
                    },
                    beta: 1e-3,
                },
            )),
            n0: 50,
        }
    }

    fn assert_pilots_bit_equal(a: &PilotState, b: &PilotState) {
        let bits = |xs: &[f64]| xs.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(a.model.parameters()), bits(b.model.parameters()));
        assert_eq!(a.model.sample_size, b.model.sample_size);
        assert_eq!(a.model.iterations, b.model.iterations);
        assert_eq!(a.model.converged, b.model.converged);
        assert_eq!(
            a.model.objective_value.to_bits(),
            b.model.objective_value.to_bits()
        );
        assert_eq!(a.n0, b.n0);
        match (&a.stats, &b.stats) {
            (None, None) => {}
            (Some(sa), Some(sb)) => {
                assert_eq!(sa.dim(), sb.dim());
                assert_eq!(sa.rank(), sb.rank());
                // Marginal variances exercise the factor along its
                // stored branch; bit-equality here means the factor
                // round-tripped on the same code path with the same
                // bits.
                assert_eq!(
                    bits(&sa.marginal_variances()),
                    bits(&sb.marginal_variances())
                );
            }
            _ => panic!("statistics presence diverged"),
        }
    }

    fn tmpfile(tag: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("blinkml-sidecar-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("pilots.bin")
    }

    #[test]
    fn sidecar_roundtrips_pilots_and_floors() {
        let path = tmpfile("roundtrip");
        let entries = vec![
            ((1u64, 0u64, 100usize, 7u64), Arc::new(dense_pilot(1))),
            ((2, 3, 50, 9), Arc::new(implicit_pilot())),
        ];
        let mut floors = HashMap::new();
        floors.insert(2u64, 2u64);
        assert_eq!(save(&path, &entries, &floors).unwrap(), 2);

        let (restored, restored_floors) = load(&path).unwrap();
        assert_eq!(restored_floors, floors);
        assert_eq!(restored.len(), 2);
        for ((ka, pa), (kb, pb)) in entries.iter().zip(&restored) {
            assert_eq!(ka, kb, "entry order must survive the roundtrip");
            assert_pilots_bit_equal(pa, pb);
        }
        std::fs::remove_dir_all(path.parent().unwrap()).ok();
    }

    #[test]
    fn save_is_deterministic() {
        let path_a = tmpfile("det-a");
        let path_b = tmpfile("det-b");
        let entries = vec![((1u64, 0u64, 10usize, 1u64), Arc::new(dense_pilot(3)))];
        let mut floors = HashMap::new();
        floors.insert(5u64, 1u64);
        floors.insert(1u64, 0u64);
        save(&path_a, &entries, &floors).unwrap();
        save(&path_b, &entries, &floors).unwrap();
        assert_eq!(fs::read(&path_a).unwrap(), fs::read(&path_b).unwrap());
        std::fs::remove_dir_all(path_a.parent().unwrap()).ok();
        std::fs::remove_dir_all(path_b.parent().unwrap()).ok();
    }

    #[test]
    fn damaged_sidecar_is_rejected() {
        let path = tmpfile("damaged");
        save(
            &path,
            &[((1, 0, 10, 1), Arc::new(dense_pilot(0)))],
            &HashMap::new(),
        )
        .unwrap();
        let mut bytes = fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        fs::write(&path, &bytes).unwrap();
        assert!(matches!(load(&path), Err(WalError::Corrupt { .. })));
        // Truncation (a torn copy) is also rejected, not misread.
        fs::write(&path, &bytes[..bytes.len() - 3]).unwrap();
        assert!(load(&path).is_err());
        std::fs::remove_dir_all(path.parent().unwrap()).ok();
    }

    #[test]
    fn missing_sidecar_is_an_io_error() {
        let path = std::env::temp_dir().join("blinkml-sidecar-definitely-missing.bin");
        assert!(matches!(load(&path), Err(WalError::Io(_))));
    }
}
