//! Multi-tenant serving layer: a request queue + worker pool over the
//! coordinator workflow.
//!
//! [`Session`](crate::Session) amortizes repeated `train(ε, δ, seed)`
//! queries for **one** caller; this module promotes that amortization to
//! a concurrent service (the ROADMAP's "millions of users" path — cheap
//! approximate training is only a serving story if many tenants can
//! share it). A [`Server`] owns a set of dataset versions and a pool of
//! worker threads:
//!
//! * the **pool-resident design matrix** is built once per dataset
//!   version and shared by every worker (the datasets themselves are
//!   `Arc`-shared with the caller via [`DatasetShard`]),
//! * **pilot artifacts** (`m₀` + Fisher statistics) are cached in a
//!   keyed LRU by `(dataset_version, n₀, seed)` with a configurable
//!   capacity ([`ServeConfig::pilot_cache_capacity`]),
//! * concurrent queries that miss on the same key **coalesce**: one
//!   worker (the leader) trains the pilot exactly once, the rest block
//!   on the in-flight entry and reuse the published artifacts,
//! * each worker owns its **own** capture scratch, so overlapping
//!   queries can never alias a packing buffer (the scratch is
//!   per-worker, not per-session).
//!
//! # Bit-identity contract
//!
//! Every served response is **bit-identical** to a cold
//! [`Coordinator`](crate::Coordinator) run with the same configuration:
//! for a query `(dataset, ε, δ, seed)` the response's θ, ε₀, ε̂, and
//! chosen `n` equal those of
//! `Coordinator::new(base config with (ε, δ)).train_with_holdout(spec,
//! train, holdout, seed)` — regardless of worker count, arrival order,
//! cache hits, coalescing, or evictions. The cache stores exactly the
//! values a fresh run would recompute (the `Session` argument), the
//! dataset version is part of the cache key (no stale pilots), and the
//! deterministic execution layer makes thread budgets invisible to
//! results. `crates/core/tests/serving.rs` drives interleaved
//! multi-tenant schedules against a serial fresh-coordinator oracle to
//! pin this contract, including under injected-slow-worker schedules.
//!
//! # Failure semantics
//!
//! A query that fails (invalid contract, optimizer error, or a panic
//! inside training) resolves its response to `Err` and — when the
//! failing worker led an in-flight pilot — retires the in-flight entry
//! so the next query for that key leads a fresh attempt. Failures never
//! poison the cache and never wedge the queue; coalesced waiters
//! receive a clone of the leader's error.
//!
//! On top of that baseline, the [`resilience`] module adds deadline-
//! aware degradation (see `ARCHITECTURE.md` § "Failure semantics"):
//!
//! * **Deadlines** — [`Query::deadline`] threads a cooperative
//!   [`CancelToken`] through the coordinator;
//!   it is polled at phase boundaries and once per optimizer iteration,
//!   never preemptively.
//! * **Degradation ladder** — under deadline pressure a query resolves
//!   to a *degraded* `Ok` instead of an `Err`, walking full model →
//!   relaxed final model (honest curve ε) → cached pilot (honest ε₀) →
//!   fail-fast. The reported ε is always the achieved guarantee,
//!   recomputed for the rung actually served — never the requested one.
//! * **Admission control** — a bounded queue
//!   ([`ServeConfig::queue_capacity`]) with a configurable
//!   [`ShedPolicy`] (reject vs. degrade into
//!   a pilot-only lane) and optional per-tenant in-flight caps.
//! * **Retries** — transiently-failed jobs (worker panic, a coalesced
//!   waiter inheriting its leader's deadline error) are re-run with
//!   jittered exponential backoff up to [`ServeConfig::retry_budget`].
//!
//! `crates/core/tests/resilience.rs` drives scripted fault plans
//! (deterministic slow-downs, panics, and deadline trips at chosen
//! phases) against this machinery and pins exactly-once resolution,
//! bit-equal degraded guarantees, and counter reconciliation.
//!
//! # Streaming ingest & drift
//!
//! A [`StreamShard`] registers a
//! [`StreamingPool`] instead of a frozen
//! [`DatasetShard`]: writers keep appending validated row blocks (each
//! admitted block bumps the pool's **epoch**) while queries pin an
//! immutable epoch snapshot and train against exactly that snapshot —
//! [`ServedResponse::epoch`] names it, and the bit-identity contract
//! holds *per snapshot*: the response equals a cold coordinator run on
//! the materialized pool of that epoch.
//!
//! Cached pilots from older epochs walk a **drift ladder** keyed by a
//! cheap holdout-shift score ([`ServeConfig::drift_warn`] /
//! [`ServeConfig::drift_fail`]): a fresh-enough pilot serves the full
//! workflow on its own snapshot; a stale-but-servable pilot is served
//! directly as [`DegradationRung::StalePilot`] with an honestly
//! *recomputed* (inflated) ε — the `curve_epsilon_at` oracle at
//! `n = n₀` on the pilot's snapshot — and a drifted-out pilot triggers
//! a retrain at the current epoch, warm-started from the stale θ under
//! [`WarmStartPolicy::PathFollow`] (with the sweep engine's cold
//! fallback) or cold under the default
//! [`WarmStartPolicy::ExactReplay`]. [`Server::advance_epoch`] retires
//! superseded cache entries eagerly; the cache's floor keeps a
//! mid-coalesce completion for a superseded epoch out of the LRU.
//!
//! # Warm restart
//!
//! [`ServeConfig::pilot_sidecar`] names a file the server writes its
//! pilot cache to at shutdown (atomically) and reloads at spawn, so a
//! restarted server answers its first queries from warm pilots — bit-
//! identical to the uninterrupted server's answers — instead of
//! retraining them. Restored entries are revalidated against the
//! registered datasets and their recovered epochs; see the `sidecar`
//! module docs for the contract. Pair it with durable
//! [`StreamingPool`]s (`StreamingPool::open`) to bring a crashed
//! serving process back bit-exactly: the WAL recovers the data, the
//! sidecar recovers the warm state.

pub(crate) mod cache;
pub mod resilience;
pub(crate) mod sidecar;

use crate::config::{BlinkMlConfig, ServeConfig, ShedPolicy, WarmStartPolicy};
use crate::coordinator::{
    build_pool, run_train_controlled, PilotState, RunControl, TrainingOutcome, TrainingPhaseTimes,
};
use crate::diff_engine::HoldoutScorer;
use crate::error::CoreError;
use crate::mcs::ModelClassSpec;
use crate::sample_size::SampleSizeEstimator;
use crate::serve::cache::{PilotCache, PilotKey, PilotTicket};
use crate::serve::resilience::{retry_backoff, ActiveTokenGuard, CancelToken, DegradationRung};
use crate::sweep::{run_sweep, SweepPlan, SweepResult};
use blinkml_data::{
    CaptureScratch, Dataset, DatasetMatrix, FeatureVec, StreamSnapshot, StreamingPool,
};
use blinkml_prob::split_seed;
use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Errors surfaced by the serving layer.
#[derive(Debug, Clone)]
pub enum ServeError {
    /// The query named a dataset version the server does not hold.
    UnknownDataset(u64),
    /// The underlying training run failed.
    Train(CoreError),
    /// A worker panicked while processing the query (the panic is
    /// contained: the worker keeps serving and any in-flight pilot
    /// entry is retired).
    WorkerPanicked(String),
    /// The server is shut down and no longer accepts queries; queries
    /// still queued (never started) at shutdown also resolve to this.
    Closed,
    /// The bounded queue was full and the shed policy rejected the
    /// query (always the outcome for sweeps at capacity).
    QueueFull {
        /// The configured [`ServeConfig::queue_capacity`].
        capacity: usize,
    },
    /// The tenant already had its configured cap of in-flight queries.
    TenantOverloaded {
        /// The rejected tenant.
        tenant: u64,
        /// The configured [`ServeConfig::tenant_inflight_cap`].
        cap: usize,
    },
    /// The query's deadline expired before any model with an honest
    /// guarantee existed (the fail-fast floor of the degradation
    /// ladder).
    DeadlineExceeded,
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::UnknownDataset(v) => write!(f, "unknown dataset version {v}"),
            ServeError::Train(e) => write!(f, "query failed: {e}"),
            ServeError::WorkerPanicked(msg) => write!(f, "worker panicked: {msg}"),
            ServeError::Closed => write!(f, "server is shut down"),
            ServeError::QueueFull { capacity } => {
                write!(f, "queue full (capacity {capacity})")
            }
            ServeError::TenantOverloaded { tenant, cap } => {
                write!(f, "tenant {tenant} already has {cap} queries in flight")
            }
            ServeError::DeadlineExceeded => {
                write!(
                    f,
                    "deadline expired before any guaranteed model was available"
                )
            }
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Train(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CoreError> for ServeError {
    fn from(e: CoreError) -> Self {
        ServeError::Train(e)
    }
}

/// One tenant query: a dataset version plus the per-query contract.
///
/// Everything *else* about a training run — optimizer options,
/// statistics method, sampling mode, thread budget — comes from the
/// server's base [`BlinkMlConfig`], deliberately: the cached pilot
/// artifacts are exact for any `(ε, δ)` but depend on those base knobs,
/// so holding them fixed per server is what keeps cache reuse
/// bit-exact.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Query {
    /// Dataset version to train against.
    pub dataset: u64,
    /// Error bound `ε` for this query.
    pub epsilon: f64,
    /// Violation probability `δ` for this query.
    pub delta: f64,
    /// Sampling seed (queries sharing `(dataset, n₀, seed)` share a
    /// pilot).
    pub seed: u64,
    /// Optional per-query initial sample size `n₀` (defaults to the
    /// server's base configuration). Part of the pilot cache key.
    pub initial_sample_size: Option<usize>,
    /// Optional completion deadline, measured from submission. Under
    /// deadline pressure the response degrades down the ladder (see the
    /// [module docs](self)) instead of failing; a deadline that expires
    /// before any guaranteed model exists resolves to
    /// [`ServeError::DeadlineExceeded`].
    pub deadline: Option<Duration>,
    /// Tenant identifier for per-tenant admission caps
    /// ([`ServeConfig::tenant_inflight_cap`]). Defaults to `0` (all
    /// queries share one tenant).
    pub tenant: u64,
}

impl Query {
    /// Query with the server's default `n₀`, no deadline, tenant 0.
    pub fn new(dataset: u64, epsilon: f64, delta: f64, seed: u64) -> Self {
        Query {
            dataset,
            epsilon,
            delta,
            seed,
            initial_sample_size: None,
            deadline: None,
            tenant: 0,
        }
    }

    /// Override the initial sample size for this query.
    pub fn with_initial_sample_size(mut self, n0: usize) -> Self {
        self.initial_sample_size = Some(n0);
        self
    }

    /// Attach a completion deadline (measured from submission).
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Attribute this query to a tenant.
    pub fn with_tenant(mut self, tenant: u64) -> Self {
        self.tenant = tenant;
        self
    }
}

/// One tenant hyperparameter-sweep query: a dataset version, the λ
/// grid, and the shared per-query contract — the serving form of
/// [`Session::sweep`](crate::Session::sweep).
///
/// Sweep pilots depend on λ, so sweeps **bypass** the server's pilot
/// cache in both directions (they neither read nor populate it); the
/// fused engine's shared pilot capture plays the cache's role within
/// the query.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepQuery {
    /// Dataset version to train against.
    pub dataset: u64,
    /// L2 grid, one trained model per λ (results in this order).
    pub lambdas: Vec<f64>,
    /// Error bound `ε` shared by every grid point.
    pub epsilon: f64,
    /// Violation probability `δ` shared by every grid point.
    pub delta: f64,
    /// Sampling seed shared by every grid point.
    pub seed: u64,
    /// Warm-start policy for the grid's final fits.
    pub warm_start: WarmStartPolicy,
    /// Optional per-query initial sample size `n₀` (defaults to the
    /// server's base configuration).
    pub initial_sample_size: Option<usize>,
}

impl SweepQuery {
    /// Sweep query with the default ([`WarmStartPolicy::ExactReplay`])
    /// policy and the server's default `n₀`.
    pub fn new(dataset: u64, lambdas: Vec<f64>, epsilon: f64, delta: f64, seed: u64) -> Self {
        SweepQuery {
            dataset,
            lambdas,
            epsilon,
            delta,
            seed,
            warm_start: WarmStartPolicy::default(),
            initial_sample_size: None,
        }
    }

    /// Override the warm-start policy for this query.
    pub fn with_warm_start(mut self, policy: WarmStartPolicy) -> Self {
        self.warm_start = policy;
        self
    }

    /// Override the initial sample size for this query.
    pub fn with_initial_sample_size(mut self, n0: usize) -> Self {
        self.initial_sample_size = Some(n0);
        self
    }
}

/// A served training result plus serving metadata.
#[derive(Debug, Clone)]
pub struct ServedResponse {
    /// The training outcome. On the [`DegradationRung::Full`] rung this
    /// is bit-identical to a cold coordinator run for this query; on a
    /// degraded rung its `estimated_epsilon` is the honest achieved
    /// guarantee for that rung, bit-equal to what a cold coordinator
    /// would compute for the same curve point.
    pub outcome: TrainingOutcome,
    /// Which rung of the degradation ladder produced the outcome.
    pub rung: DegradationRung,
    /// The epoch snapshot this response was computed against: always 0
    /// for static [`DatasetShard`]s; for a [`StreamShard`], the epoch
    /// whose materialized pool reproduces this response bit-for-bit in
    /// a cold coordinator run (the current epoch on the fresh path, the
    /// pilot's own epoch on drift-reuse and
    /// [`DegradationRung::StalePilot`] paths).
    pub epoch: u64,
    /// Submit-to-completion latency as measured by the server (queue
    /// wait plus processing).
    pub latency: Duration,
}

/// A served sweep result plus serving metadata.
#[derive(Debug, Clone)]
pub struct ServedSweep {
    /// The grid results — under the default warm-start policy, each
    /// point bit-identical to an independent cold run with that λ.
    pub result: SweepResult,
    /// Submit-to-completion latency as measured by the server.
    pub latency: Duration,
}

/// One dataset version registered with a [`Server`]: the training pool
/// and holdout set, `Arc`-shared so the caller can keep using them
/// (e.g. to run oracle comparisons) without cloning the data.
#[derive(Debug, Clone)]
pub struct DatasetShard<F: FeatureVec> {
    /// Version identifier — part of every pilot cache key, which is
    /// what makes cross-version pilot reuse impossible.
    pub version: u64,
    /// Training pool (BlinkML samples from this).
    pub train: Arc<Dataset<F>>,
    /// Holdout set (prediction-difference evaluation only).
    pub holdout: Arc<Dataset<F>>,
}

impl<F: FeatureVec> DatasetShard<F> {
    /// Register a dataset version from owned datasets.
    pub fn new(version: u64, train: Dataset<F>, holdout: Dataset<F>) -> Self {
        DatasetShard {
            version,
            train: Arc::new(train),
            holdout: Arc::new(holdout),
        }
    }

    /// Register a dataset version from already-shared datasets.
    pub fn from_arcs(version: u64, train: Arc<Dataset<F>>, holdout: Arc<Dataset<F>>) -> Self {
        DatasetShard {
            version,
            train,
            holdout,
        }
    }
}

/// One streaming dataset registered with a [`Server`]: an appendable
/// [`StreamingPool`] shared between the caller (who keeps appending)
/// and the serving threads (who pin epoch snapshots). The `id` plays
/// the role of [`DatasetShard::version`] in queries and cache keys.
#[derive(Debug, Clone)]
pub struct StreamShard<F: FeatureVec> {
    /// Dataset identifier — shares the keyspace with static shard
    /// versions, so ids must be unique across both.
    pub id: u64,
    /// The appendable pool. Keep a clone of this `Arc` to append.
    pub pool: Arc<StreamingPool<F>>,
}

impl<F: FeatureVec> StreamShard<F> {
    /// Register a streaming dataset from an owned pool.
    pub fn new(id: u64, pool: StreamingPool<F>) -> Self {
        StreamShard {
            id,
            pool: Arc::new(pool),
        }
    }

    /// Register a streaming dataset from an already-shared pool.
    pub fn from_arc(id: u64, pool: Arc<StreamingPool<F>>) -> Self {
        StreamShard { id, pool }
    }
}

/// Where a dataset id resolves: a frozen shard or a streaming pool
/// (index into the respective registration vector).
#[derive(Debug, Clone, Copy)]
enum Target {
    Static(usize),
    Stream(usize),
}

/// Epoch-scan bound for the drift ladder: pilots more than this many
/// epochs behind the current snapshot are treated as absent (cold
/// retrain) even when [`ServeConfig::max_stale_epochs`] is unbounded,
/// keeping the per-query cache scan O(1)-ish under fast append rates.
const MAX_DRIFT_LOOKBACK: u64 = 32;

/// Snapshot of the server's counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Queries accepted into the queue.
    pub submitted: u64,
    /// Queries resolved with `Ok`.
    pub completed: u64,
    /// Queries resolved with `Err`.
    pub failed: u64,
    /// Pilot cache hits.
    pub cache_hits: u64,
    /// Pilots actually trained (cache misses that led).
    pub pilot_trains: u64,
    /// Queries that coalesced onto another worker's in-flight pilot.
    pub coalesced_waits: u64,
    /// Pilot cache evictions.
    pub evictions: u64,
    /// Sweep queries resolved (success or failure).
    pub sweep_queries: u64,
    /// Sweep final fits that accepted a neighbor warm start
    /// (path-following sweeps only).
    pub warm_starts_taken: u64,
    /// Sweep final fits whose neighbor warm start was rejected by the
    /// line search and fell back to the point's own pilot θ₀.
    pub warm_starts_rejected: u64,
    /// Queries accepted into the pilot-only lane by
    /// [`ShedPolicy::Degrade`] at a full queue.
    pub sheds: u64,
    /// Accepted queries that resolved on a degraded rung because of
    /// deadline pressure (shed queries are counted in [`sheds`], not
    /// here — the two causes are disjoint by construction).
    ///
    /// [`sheds`]: ServerStats::sheds
    pub deadline_degraded: u64,
    /// Transient-failure re-runs (each retry attempt counts once).
    pub retries: u64,
    /// Queries rejected with [`ServeError::QueueFull`].
    pub queue_full_rejects: u64,
    /// Queries rejected with [`ServeError::TenantOverloaded`].
    pub tenant_rejects: u64,
    /// Streaming queries that reused an older-epoch pilot whose drift
    /// score stayed at or below [`ServeConfig::drift_warn`] (full
    /// workflow on the pilot's own snapshot).
    pub drift_fresh: u64,
    /// Streaming queries answered on the
    /// [`DegradationRung::StalePilot`] rung (drift score between the
    /// warn and fail thresholds).
    pub drift_stale_served: u64,
    /// Streaming queries whose cached pilot drifted past
    /// [`ServeConfig::drift_fail`] and triggered a retrain at the
    /// current epoch.
    pub drift_retrains: u64,
    /// Cache entries dropped by epoch-floor advances
    /// ([`Server::advance_epoch`] / [`Server::retire_dataset`]) —
    /// counted separately from capacity [`evictions`].
    ///
    /// [`evictions`]: ServerStats::evictions
    pub pilots_retired: u64,
    /// Pilots currently cached.
    pub cached_pilots: usize,
    /// Live in-flight pilot computations (0 when idle).
    pub inflight: usize,
    /// Pilots restored from the warm-state sidecar at spawn (0 when
    /// [`ServeConfig::pilot_sidecar`] is unset or the file was absent).
    pub warm_pilots: u64,
}

#[derive(Debug, Default)]
struct StatCounters {
    submitted: AtomicU64,
    completed: AtomicU64,
    failed: AtomicU64,
    cache_hits: AtomicU64,
    pilot_trains: AtomicU64,
    coalesced_waits: AtomicU64,
    sweep_queries: AtomicU64,
    warm_starts_taken: AtomicU64,
    warm_starts_rejected: AtomicU64,
    sheds: AtomicU64,
    deadline_degraded: AtomicU64,
    retries: AtomicU64,
    queue_full_rejects: AtomicU64,
    tenant_rejects: AtomicU64,
    drift_fresh: AtomicU64,
    drift_stale_served: AtomicU64,
    drift_retrains: AtomicU64,
}

/// The handle-side slot a worker publishes one response into.
#[derive(Debug)]
struct Ticket<T> {
    slot: Mutex<Option<Result<T, ServeError>>>,
    cv: Condvar,
}

impl<T> Default for Ticket<T> {
    fn default() -> Self {
        Ticket {
            slot: Mutex::new(None),
            cv: Condvar::new(),
        }
    }
}

impl<T> Ticket<T> {
    fn publish(&self, result: Result<T, ServeError>) {
        let mut slot = self.slot.lock().unwrap_or_else(|e| e.into_inner());
        debug_assert!(slot.is_none(), "response published twice");
        *slot = Some(result);
        self.cv.notify_all();
    }

    fn wait(&self) -> Result<T, ServeError> {
        let mut slot = self.slot.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(result) = slot.take() {
                return result;
            }
            slot = self.cv.wait(slot).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Wait until the response is published or `timeout` elapses;
    /// `None` means the wait timed out and the response is still owed.
    fn wait_timeout(&self, timeout: Duration) -> Option<Result<T, ServeError>> {
        let give_up = Instant::now() + timeout;
        let mut slot = self.slot.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(result) = slot.take() {
                return Some(result);
            }
            let now = Instant::now();
            if now >= give_up {
                return None;
            }
            let (guard, _) = self
                .cv
                .wait_timeout(slot, give_up - now)
                .unwrap_or_else(|e| e.into_inner());
            slot = guard;
        }
    }

    fn try_take(&self) -> Option<Result<T, ServeError>> {
        self.slot.lock().unwrap_or_else(|e| e.into_inner()).take()
    }

    fn is_ready(&self) -> bool {
        self.slot
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .is_some()
    }
}

/// A pending response: the asynchronous half of [`Server::submit`].
/// Block on [`ResponseHandle::wait`], or poll with
/// [`ResponseHandle::is_ready`].
#[derive(Debug)]
pub struct ResponseHandle {
    ticket: Arc<Ticket<ServedResponse>>,
}

impl ResponseHandle {
    /// Block until the query resolves and return its response.
    pub fn wait(self) -> Result<ServedResponse, ServeError> {
        self.ticket.wait()
    }

    /// Wait up to `timeout` for the response. `None` means the wait
    /// timed out: the query is **still in flight** and the handle can
    /// keep waiting. `Some` consumes the response — the response is
    /// delivered exactly once, so a later `wait`/`try_wait` on this
    /// handle will not see it again.
    pub fn wait_timeout(&self, timeout: Duration) -> Option<Result<ServedResponse, ServeError>> {
        self.ticket.wait_timeout(timeout)
    }

    /// Take the response if it is already published (non-blocking).
    /// Like [`wait_timeout`](ResponseHandle::wait_timeout), a `Some`
    /// consumes the response.
    pub fn try_wait(&self) -> Option<Result<ServedResponse, ServeError>> {
        self.ticket.try_take()
    }

    /// Whether the response has been published (non-blocking).
    pub fn is_ready(&self) -> bool {
        self.ticket.is_ready()
    }
}

/// A pending sweep response: the asynchronous half of
/// [`Server::submit_sweep`].
#[derive(Debug)]
pub struct SweepResponseHandle {
    ticket: Arc<Ticket<ServedSweep>>,
}

impl SweepResponseHandle {
    /// Block until the sweep resolves and return its response.
    pub fn wait(self) -> Result<ServedSweep, ServeError> {
        self.ticket.wait()
    }

    /// Wait up to `timeout` for the response; `Some` consumes it (see
    /// [`ResponseHandle::wait_timeout`]).
    pub fn wait_timeout(&self, timeout: Duration) -> Option<Result<ServedSweep, ServeError>> {
        self.ticket.wait_timeout(timeout)
    }

    /// Take the response if already published; `Some` consumes it.
    pub fn try_wait(&self) -> Option<Result<ServedSweep, ServeError>> {
        self.ticket.try_take()
    }

    /// Whether the response has been published (non-blocking).
    pub fn is_ready(&self) -> bool {
        self.ticket.is_ready()
    }
}

/// One queued request and where to publish its response.
enum Request {
    Train(Query, Arc<Ticket<ServedResponse>>),
    Sweep(SweepQuery, Arc<Ticket<ServedSweep>>),
}

/// One queued job: the resolved target, the request, its
/// submission time, and its admission-time resilience decisions.
struct Job {
    target: Target,
    request: Request,
    submitted: Instant,
    /// Absolute deadline (submission time + [`Query::deadline`]).
    deadline: Option<Instant>,
    /// The job was accepted into the pilot-only lane by
    /// [`ShedPolicy::Degrade`] at a full queue.
    shed_degraded: bool,
}

#[derive(Default)]
struct QueueState {
    jobs: VecDeque<Job>,
    closed: bool,
    /// In-flight (queued + running) `Train` queries per tenant,
    /// maintained by admission and [`Shared::finish_tenant`].
    tenant_inflight: HashMap<u64, usize>,
}

/// State shared between the handle and the worker pool. Holds only
/// owned data (the generic datasets/pools live in the owner thread), so
/// the [`Server`] handle itself is not generic.
struct Shared {
    queue: Mutex<QueueState>,
    cv: Condvar,
    cache: PilotCache,
    stats: StatCounters,
    serve: ServeConfig,
}

impl Shared {
    /// Pop the next job, blocking while the queue is open and empty.
    /// Returns `None` when the queue is closed **and** drained — the
    /// worker exit condition. (Whether "drained" means "served" or
    /// "aborted" is the shutdown caller's choice; see
    /// [`Server::shutdown`] vs [`Server::shutdown_drain`].)
    fn next_job(&self) -> Option<Job> {
        let mut queue = self.queue.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(job) = queue.jobs.pop_front() {
                return Some(job);
            }
            if queue.closed {
                return None;
            }
            queue = self.cv.wait(queue).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Release one unit of a tenant's in-flight budget (after the
    /// response for one of its `Train` queries is published).
    fn finish_tenant(&self, tenant: u64) {
        let mut queue = self.queue.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(count) = queue.tenant_inflight.get_mut(&tenant) {
            *count -= 1;
            if *count == 0 {
                queue.tenant_inflight.remove(&tenant);
            }
        }
    }
}

/// A multi-tenant model-serving front end over the coordinator
/// workflow. See the [module docs](self) for the architecture and the
/// bit-identity contract.
///
/// ```
/// # use blinkml_core::models::LogisticRegressionSpec;
/// # use blinkml_core::serve::{DatasetShard, Query, Server};
/// # use blinkml_core::{BlinkMlConfig, ServeConfig};
/// # use blinkml_data::generators::synthetic_logistic;
/// let (data, _) = synthetic_logistic(6_000, 4, 2.0, 1);
/// let split = data.split(800, 0, 2);
/// let config = BlinkMlConfig {
///     initial_sample_size: 300,
///     num_param_samples: 16,
///     ..BlinkMlConfig::default()
/// };
/// let server = Server::spawn(
///     config,
///     ServeConfig::default(),
///     LogisticRegressionSpec::new(1e-3),
///     vec![DatasetShard::new(1, split.train, split.holdout)],
/// )
/// .unwrap();
/// let response = server.query(Query::new(1, 0.10, 0.05, 7)).unwrap();
/// assert!(response.outcome.sample_size > 0);
/// server.shutdown();
/// ```
pub struct Server {
    shared: Arc<Shared>,
    versions: HashMap<u64, Target>,
    /// Per-stream current-epoch probes (the pools themselves are
    /// generic and live in the owner thread; the handle only ever needs
    /// their epoch counter, for [`Server::advance_epoch`]).
    stream_epochs: HashMap<u64, Arc<dyn Fn() -> u64 + Send + Sync>>,
    /// Pilots admitted from the warm-state sidecar at spawn.
    warm_pilots: u64,
    owner: Option<std::thread::JoinHandle<()>>,
}

impl Server {
    /// Spawn a server: validates the configuration and datasets, builds
    /// one pool-resident design matrix per dataset version, and starts
    /// [`ServeConfig::workers`] worker threads.
    ///
    /// The spec and datasets move into the serving threads; keep
    /// [`DatasetShard`] clones (they are `Arc`-shared) for oracle runs
    /// or later inspection.
    pub fn spawn<F, S>(
        config: BlinkMlConfig,
        serve: ServeConfig,
        spec: S,
        shards: Vec<DatasetShard<F>>,
    ) -> Result<Server, CoreError>
    where
        F: FeatureVec,
        S: ModelClassSpec<F> + 'static,
    {
        Server::spawn_with_streams(config, serve, spec, shards, Vec::new())
    }

    /// [`Server::spawn`] plus streaming datasets: each [`StreamShard`]
    /// registers an appendable [`StreamingPool`] whose queries resolve
    /// through the drift ladder (see the [module docs](self)). Static
    /// shards and streams share one id keyspace. Streams must hold at
    /// least one training and one holdout row at spawn.
    pub fn spawn_with_streams<F, S>(
        config: BlinkMlConfig,
        serve: ServeConfig,
        spec: S,
        shards: Vec<DatasetShard<F>>,
        streams: Vec<StreamShard<F>>,
    ) -> Result<Server, CoreError>
    where
        F: FeatureVec,
        S: ModelClassSpec<F> + 'static,
    {
        config.validate()?;
        serve.validate()?;
        if shards.is_empty() && streams.is_empty() {
            return Err(CoreError::InvalidConfig(
                "server needs at least one dataset version".into(),
            ));
        }
        let mut versions = HashMap::new();
        for (i, shard) in shards.iter().enumerate() {
            if shard.train.is_empty() {
                return Err(CoreError::InvalidData(format!(
                    "dataset version {} has an empty training pool",
                    shard.version
                )));
            }
            if shard.holdout.is_empty() {
                return Err(CoreError::InvalidData(format!(
                    "dataset version {} has an empty holdout set",
                    shard.version
                )));
            }
            if versions.insert(shard.version, Target::Static(i)).is_some() {
                return Err(CoreError::InvalidConfig(format!(
                    "duplicate dataset version {}",
                    shard.version
                )));
            }
        }
        let mut stream_epochs: HashMap<u64, Arc<dyn Fn() -> u64 + Send + Sync>> = HashMap::new();
        for (i, stream) in streams.iter().enumerate() {
            let snapshot = stream.pool.snapshot();
            if snapshot.train_len() == 0 {
                return Err(CoreError::InvalidData(format!(
                    "streaming dataset {} has an empty training pool",
                    stream.id
                )));
            }
            if snapshot.holdout_len() == 0 {
                return Err(CoreError::InvalidData(format!(
                    "streaming dataset {} has an empty holdout set",
                    stream.id
                )));
            }
            if versions.insert(stream.id, Target::Stream(i)).is_some() {
                return Err(CoreError::InvalidConfig(format!(
                    "duplicate dataset version {}",
                    stream.id
                )));
            }
            let pool = stream.pool.clone();
            stream_epochs.insert(stream.id, Arc::new(move || pool.epoch()));
        }
        // Warm restore: read the pilot sidecar (when configured) before
        // any worker starts. Best-effort — a missing or damaged sidecar
        // means a cold start, never a spawn error. Entries are
        // revalidated here: the dataset must be registered with *this*
        // server, and the pilot's epoch must exist on the (possibly
        // crash-recovered) pool — a durable pool that lost an unsynced
        // tail recovers to an earlier epoch, and pilots for the lost
        // epochs describe snapshots that no longer exist. Persisted
        // floors are re-applied by the seed, so retired epochs stay
        // retired across restarts.
        let mut warm_entries = Vec::new();
        let mut warm_floors = HashMap::new();
        if let Some(path) = &serve.pilot_sidecar {
            if let Ok((entries, floors)) = sidecar::load(path) {
                warm_entries = entries
                    .into_iter()
                    .filter(|(key, _)| match versions.get(&key.0) {
                        Some(Target::Static(_)) => key.1 == 0,
                        Some(Target::Stream(_)) => stream_epochs[&key.0]() >= key.1,
                        None => false,
                    })
                    .collect();
                warm_floors = floors;
            }
        }
        let worker_count = serve.workers;
        let shared = Arc::new(Shared {
            queue: Mutex::new(QueueState::default()),
            cv: Condvar::new(),
            cache: PilotCache::new(serve.pilot_cache_capacity),
            stats: StatCounters::default(),
            serve,
        });
        let warm_pilots = shared.cache.seed(warm_entries, warm_floors) as u64;
        let owner = {
            let shared = shared.clone();
            std::thread::spawn(move || {
                // The owner thread owns the generic state (spec,
                // datasets, pool matrices); workers are scoped threads
                // borrowing it, which is what lets the pool-resident
                // matrices be built once and shared without any
                // self-referential tricks. Streaming pools have no
                // resident matrix — every query pins its own epoch
                // snapshot and materializes (and pools) exactly that.
                config.exec.apply();
                let pools: Vec<Option<DatasetMatrix<'_>>> = shards
                    .iter()
                    .map(|sh| build_pool(&spec, &sh.train, &config))
                    .collect();
                std::thread::scope(|scope| {
                    for _ in 0..worker_count {
                        let (shared, config, spec, shards, streams, pools) =
                            (&shared, &config, &spec, &shards, &streams, &pools);
                        scope.spawn(move || {
                            // One capture scratch per worker — never
                            // shared, so two overlapping queries cannot
                            // alias a packing buffer.
                            let mut scratch = CaptureScratch::new();
                            while let Some(job) = shared.next_job() {
                                process_job(
                                    config,
                                    spec,
                                    shards,
                                    streams,
                                    pools,
                                    shared,
                                    &mut scratch,
                                    job,
                                );
                            }
                        });
                    }
                });
            })
        };
        Ok(Server {
            shared,
            versions,
            stream_epochs,
            warm_pilots,
            owner: Some(owner),
        })
    }

    /// Enqueue a query, returning a handle that resolves when a worker
    /// completes it. Fails fast (without queueing) on an unknown
    /// dataset version, a shut-down server, a tenant over its in-flight
    /// cap, or a full queue under [`ShedPolicy::Reject`]; under
    /// [`ShedPolicy::Degrade`] a full queue sheds the query into the
    /// pilot-only lane instead.
    pub fn submit(&self, query: Query) -> Result<ResponseHandle, ServeError> {
        let ticket = Arc::new(Ticket::default());
        self.enqueue(query.dataset, Request::Train(query, ticket.clone()))?;
        Ok(ResponseHandle { ticket })
    }

    /// Enqueue a hyperparameter-sweep query, returning a handle that
    /// resolves when a worker completes the whole grid. One sweep is
    /// one job: the fused engine inside it supplies the per-λ
    /// parallelism, so grid points never compete with other tenants for
    /// queue slots mid-sweep.
    pub fn submit_sweep(&self, query: SweepQuery) -> Result<SweepResponseHandle, ServeError> {
        let ticket = Arc::new(Ticket::default());
        self.enqueue(query.dataset, Request::Sweep(query, ticket.clone()))?;
        Ok(SweepResponseHandle { ticket })
    }

    fn enqueue(&self, dataset: u64, request: Request) -> Result<(), ServeError> {
        let target = *self
            .versions
            .get(&dataset)
            .ok_or(ServeError::UnknownDataset(dataset))?;
        let serve = &self.shared.serve;
        let stats = &self.shared.stats;
        // Tenant / deadline are `Train`-only concepts; sweeps have no
        // ladder and no per-tenant budget.
        let (tenant, deadline) = match &request {
            Request::Train(q, _) => (Some(q.tenant), q.deadline),
            Request::Sweep(..) => (None, None),
        };
        let submitted = Instant::now();
        let mut job = Job {
            target,
            request,
            submitted,
            deadline: deadline.map(|d| submitted + d),
            shed_degraded: false,
        };
        {
            let mut queue = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            if queue.closed {
                return Err(ServeError::Closed);
            }
            if let (Some(tenant), Some(cap)) = (tenant, serve.tenant_inflight_cap) {
                if queue.tenant_inflight.get(&tenant).copied().unwrap_or(0) >= cap {
                    stats.tenant_rejects.fetch_add(1, Ordering::Relaxed);
                    return Err(ServeError::TenantOverloaded { tenant, cap });
                }
            }
            if queue.jobs.len() >= serve.queue_capacity {
                let shed = tenant.is_some() && serve.shed_policy == ShedPolicy::Degrade;
                // The degrade lane is itself bounded (at twice the
                // queue capacity) so overload cannot grow the queue
                // without limit.
                if !shed || queue.jobs.len() >= 2 * serve.queue_capacity {
                    stats.queue_full_rejects.fetch_add(1, Ordering::Relaxed);
                    return Err(ServeError::QueueFull {
                        capacity: serve.queue_capacity,
                    });
                }
                job.shed_degraded = true;
                stats.sheds.fetch_add(1, Ordering::Relaxed);
            }
            if let Some(tenant) = tenant {
                *queue.tenant_inflight.entry(tenant).or_insert(0) += 1;
            }
            queue.jobs.push_back(job);
        }
        stats.submitted.fetch_add(1, Ordering::Relaxed);
        self.shared.cv.notify_one();
        Ok(())
    }

    /// Submit and block for the response — the synchronous convenience
    /// form of [`Server::submit`].
    pub fn query(&self, query: Query) -> Result<ServedResponse, ServeError> {
        self.submit(query)?.wait()
    }

    /// Submit a sweep and block for the response — the synchronous
    /// convenience form of [`Server::submit_sweep`].
    pub fn sweep(&self, query: SweepQuery) -> Result<ServedSweep, ServeError> {
        self.submit_sweep(query)?.wait()
    }

    /// Snapshot the server's counters.
    pub fn stats(&self) -> ServerStats {
        let s = &self.shared.stats;
        ServerStats {
            submitted: s.submitted.load(Ordering::Relaxed),
            completed: s.completed.load(Ordering::Relaxed),
            failed: s.failed.load(Ordering::Relaxed),
            cache_hits: s.cache_hits.load(Ordering::Relaxed),
            pilot_trains: s.pilot_trains.load(Ordering::Relaxed),
            coalesced_waits: s.coalesced_waits.load(Ordering::Relaxed),
            evictions: self.shared.cache.evictions(),
            sweep_queries: s.sweep_queries.load(Ordering::Relaxed),
            warm_starts_taken: s.warm_starts_taken.load(Ordering::Relaxed),
            warm_starts_rejected: s.warm_starts_rejected.load(Ordering::Relaxed),
            sheds: s.sheds.load(Ordering::Relaxed),
            deadline_degraded: s.deadline_degraded.load(Ordering::Relaxed),
            retries: s.retries.load(Ordering::Relaxed),
            queue_full_rejects: s.queue_full_rejects.load(Ordering::Relaxed),
            tenant_rejects: s.tenant_rejects.load(Ordering::Relaxed),
            drift_fresh: s.drift_fresh.load(Ordering::Relaxed),
            drift_stale_served: s.drift_stale_served.load(Ordering::Relaxed),
            drift_retrains: s.drift_retrains.load(Ordering::Relaxed),
            pilots_retired: self.shared.cache.retired(),
            cached_pilots: self.shared.cache.cached(),
            inflight: self.shared.cache.inflight(),
            warm_pilots: self.warm_pilots,
        }
    }

    /// Write the pilot cache to the configured
    /// [`ServeConfig::pilot_sidecar`] right now (shutdown does this
    /// automatically; call this for periodic checkpoints in a
    /// long-lived server). Returns how many pilots were persisted. The
    /// write is atomic (temp + rename): a crash mid-persist leaves the
    /// previous sidecar intact.
    pub fn persist_pilots(&self) -> Result<usize, CoreError> {
        let path = self.shared.serve.pilot_sidecar.as_ref().ok_or_else(|| {
            CoreError::InvalidConfig("no pilot_sidecar configured for this server".into())
        })?;
        let (entries, floors) = self.shared.cache.export();
        sidecar::save(path, &entries, &floors)
            .map_err(|e| CoreError::InvalidData(format!("pilot sidecar write failed: {e}")))
    }

    /// Drop every cached pilot (e.g. to bound memory in a long-lived
    /// server). Results are unaffected; subsequent queries retrain on
    /// demand.
    pub fn clear_pilot_cache(&self) {
        self.shared.cache.clear();
    }

    /// Explicit epoch-advance hook for a streaming dataset: read the
    /// pool's current epoch and eagerly retire every cached pilot more
    /// than [`ServeConfig::max_stale_epochs`] epochs behind it,
    /// returning how many entries were dropped. With the default
    /// unbounded staleness budget this is a no-op; with
    /// `max_stale_epochs = 0` it retires every superseded epoch, and
    /// the cache's floor additionally guarantees that a pilot
    /// *completing* for a superseded epoch mid-coalesce is never
    /// admitted. Call it after appends when stale service is not
    /// acceptable; the drift ladder enforces the same budget lazily
    /// either way.
    pub fn advance_epoch(&self, dataset: u64) -> Result<usize, ServeError> {
        let epoch_of = self
            .stream_epochs
            .get(&dataset)
            .ok_or(ServeError::UnknownDataset(dataset))?;
        let floor = epoch_of().saturating_sub(self.shared.serve.max_stale_epochs);
        Ok(self.shared.cache.retire(dataset, floor))
    }

    /// Retire **every** cached pilot of one dataset (static or
    /// streaming) and pin its cache floor so nothing for it is ever
    /// admitted again — the decommissioning hook. Returns how many
    /// entries were dropped. The dataset stays queryable (queries
    /// simply retrain cold); unknown ids retire nothing.
    pub fn retire_dataset(&self, dataset: u64) -> usize {
        self.shared.cache.retire(dataset, u64::MAX)
    }

    /// Shut down promptly: stop accepting queries, **abort** every job
    /// still queued (never started) by resolving its handle to
    /// [`ServeError::Closed`], let jobs already running on a worker
    /// finish normally, and join the workers.
    ///
    /// This is the abort half of the drain-vs-abort contract: accepted
    /// but unstarted work is *not* silently trained through a shutdown
    /// — its waiters learn immediately. Use [`Server::shutdown_drain`]
    /// to serve out the backlog instead. `Drop` behaves like
    /// `shutdown`.
    pub fn shutdown(mut self) {
        self.close_and_join(true);
    }

    /// Shut down gracefully: stop accepting queries, drain the queue
    /// (every already-accepted query still resolves through its full
    /// workflow), and join the workers.
    pub fn shutdown_drain(mut self) {
        self.close_and_join(false);
    }

    fn close_and_join(&mut self, abort_queued: bool) {
        let aborted = {
            let mut queue = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            queue.closed = true;
            if abort_queued {
                let jobs = std::mem::take(&mut queue.jobs);
                for job in &jobs {
                    if let Request::Train(q, _) = &job.request {
                        if let Some(count) = queue.tenant_inflight.get_mut(&q.tenant) {
                            *count = count.saturating_sub(1);
                        }
                    }
                }
                jobs
            } else {
                VecDeque::new()
            }
        };
        // Publish outside the queue lock: waiters may wake and call
        // back into the server (e.g. `stats`).
        for job in aborted {
            self.shared.stats.failed.fetch_add(1, Ordering::Relaxed);
            match job.request {
                Request::Train(_, ticket) => ticket.publish(Err(ServeError::Closed)),
                Request::Sweep(_, ticket) => ticket.publish(Err(ServeError::Closed)),
            }
        }
        self.shared.cv.notify_all();
        if let Some(owner) = self.owner.take() {
            let _ = owner.join();
            // Persist the warm-state sidecar after the workers joined,
            // so the export sees every drained completion. Best-effort:
            // shutdown never fails because a checkpoint could not be
            // written (use `persist_pilots` to observe errors).
            if let Some(path) = &self.shared.serve.pilot_sidecar {
                let (entries, floors) = self.shared.cache.export();
                let _ = sidecar::save(path, &entries, &floors);
            }
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.close_and_join(true);
    }
}

/// Process one job end to end — training query (pilot resolved through
/// the cache: hit / coalesce / lead) or grid sweep (cache bypassed) —
/// and publish the response. Panics are contained per job.
#[allow(clippy::too_many_arguments)]
fn process_job<F, S>(
    base: &BlinkMlConfig,
    spec: &S,
    shards: &[DatasetShard<F>],
    streams: &[StreamShard<F>],
    pools: &[Option<DatasetMatrix<'_>>],
    shared: &Shared,
    scratch: &mut CaptureScratch,
    job: Job,
) where
    F: FeatureVec,
    S: ModelClassSpec<F> + ?Sized,
{
    let stats = &shared.stats;
    match job.request {
        Request::Train(query, ticket) => {
            let serve = &shared.serve;
            // One token per job (not per attempt): the deadline is a
            // property of the query, and retries race the same clock.
            let token = Arc::new(match job.deadline {
                Some(deadline) => CancelToken::with_deadline(deadline, serve.relax_margin),
                None => CancelToken::unbounded(),
            });
            // Publish the token to the fault-injection harness for the
            // whole job, retries included.
            let _guard = ActiveTokenGuard::install(&token);
            let result = if token.expired() {
                // Expired while queued: don't start work that can no
                // longer produce even a pilot in time.
                Err(ServeError::DeadlineExceeded)
            } else {
                let mut attempt: u32 = 0;
                loop {
                    let result = match job.target {
                        Target::Static(i) => serve_query(
                            base,
                            spec,
                            &shards[i],
                            pools[i].as_ref(),
                            shared,
                            scratch,
                            &query,
                            &token,
                            job.shed_degraded,
                        )
                        .map(|(outcome, rung)| (outcome, rung, 0)),
                        Target::Stream(i) => serve_stream_query(
                            base,
                            spec,
                            &streams[i],
                            shared,
                            scratch,
                            &query,
                            &token,
                            job.shed_degraded,
                        ),
                    };
                    // Transient failures: a contained panic, or a
                    // coalesced waiter inheriting its *leader's*
                    // deadline error while its own deadline is fine (a
                    // retry leads a fresh pilot attempt).
                    let transient = match &result {
                        Err(ServeError::WorkerPanicked(_)) => true,
                        Err(ServeError::DeadlineExceeded) => !token.expired(),
                        _ => false,
                    };
                    if transient && attempt < serve.retry_budget {
                        attempt += 1;
                        stats.retries.fetch_add(1, Ordering::Relaxed);
                        std::thread::sleep(retry_backoff(
                            serve.retry_backoff_base,
                            attempt,
                            query.seed,
                        ));
                        continue;
                    }
                    break result;
                }
            };
            match result {
                Ok((outcome, rung, epoch)) => {
                    stats.completed.fetch_add(1, Ordering::Relaxed);
                    if rung.is_degraded() && !job.shed_degraded {
                        stats.deadline_degraded.fetch_add(1, Ordering::Relaxed);
                    }
                    ticket.publish(Ok(ServedResponse {
                        outcome,
                        rung,
                        epoch,
                        latency: job.submitted.elapsed(),
                    }));
                }
                Err(e) => {
                    stats.failed.fetch_add(1, Ordering::Relaxed);
                    ticket.publish(Err(e));
                }
            }
            shared.finish_tenant(query.tenant);
        }
        Request::Sweep(query, ticket) => {
            stats.sweep_queries.fetch_add(1, Ordering::Relaxed);
            let result = match job.target {
                Target::Static(i) => serve_sweep(
                    base,
                    spec,
                    &shards[i].train,
                    &shards[i].holdout,
                    pools[i].as_ref(),
                    scratch,
                    &query,
                ),
                Target::Stream(i) => {
                    // Sweeps pin the submission-time snapshot too: the
                    // whole grid trains against one epoch.
                    let snapshot = streams[i].pool.snapshot();
                    let train = snapshot.train_dataset();
                    let holdout = snapshot.holdout_dataset();
                    let pool = build_pool(spec, &train, base);
                    serve_sweep(base, spec, &train, &holdout, pool.as_ref(), scratch, &query)
                }
            };
            match result {
                Ok(result) => {
                    stats
                        .warm_starts_taken
                        .fetch_add(result.warm_starts_taken as u64, Ordering::Relaxed);
                    stats
                        .warm_starts_rejected
                        .fetch_add(result.warm_starts_rejected as u64, Ordering::Relaxed);
                    stats.completed.fetch_add(1, Ordering::Relaxed);
                    ticket.publish(Ok(ServedSweep {
                        result,
                        latency: job.submitted.elapsed(),
                    }));
                }
                Err(e) => {
                    stats.failed.fetch_add(1, Ordering::Relaxed);
                    ticket.publish(Err(e));
                }
            }
        }
    }
}

/// The static-shard training-query workflow behind [`process_job`],
/// returning the outcome (and the rung that produced it) or the error
/// to publish.
#[allow(clippy::too_many_arguments)]
fn serve_query<F, S>(
    base: &BlinkMlConfig,
    spec: &S,
    shard: &DatasetShard<F>,
    pool: Option<&DatasetMatrix<'_>>,
    shared: &Shared,
    scratch: &mut CaptureScratch,
    query: &Query,
    token: &Arc<CancelToken>,
    shed_degraded: bool,
) -> Result<(TrainingOutcome, DegradationRung), ServeError>
where
    F: FeatureVec,
    S: ModelClassSpec<F> + ?Sized,
{
    let mut config = base.clone();
    config.epsilon = query.epsilon;
    config.delta = query.delta;
    if let Some(n0) = query.initial_sample_size {
        config.initial_sample_size = n0;
    }
    config.validate()?;
    // Reinstall the budget: another coordinator in the process may have
    // moved the global knob. Results are budget-independent either way.
    config.exec.apply();

    let n0 = config.initial_sample_size.min(shard.train.len());
    // Static shards never move: their pilots live at epoch 0 forever.
    let key: PilotKey = (shard.version, 0, n0, query.seed);
    let control = RunControl {
        cancel: Some(token.clone()),
        pilot_only: shed_degraded,
        relax_fraction: shared.serve.relax_fraction,
        pilot_warm_start: None,
    };
    resolve_and_run(
        config,
        spec,
        &shard.train,
        &shard.holdout,
        pool,
        shared,
        scratch,
        query.seed,
        key,
        &control,
    )
}

/// The hit / coalesce / lead resolution protocol shared by static
/// shards and the streaming cold path: resolve `key` through the pilot
/// cache and run the coordinator workflow, completing or failing the
/// in-flight entry on the leader path.
#[allow(clippy::too_many_arguments)]
fn resolve_and_run<F, S>(
    config: BlinkMlConfig,
    spec: &S,
    train: &Dataset<F>,
    holdout: &Dataset<F>,
    pool: Option<&DatasetMatrix<'_>>,
    shared: &Shared,
    scratch: &mut CaptureScratch,
    seed: u64,
    key: PilotKey,
    control: &RunControl,
) -> Result<(TrainingOutcome, DegradationRung), ServeError>
where
    F: FeatureVec,
    S: ModelClassSpec<F> + ?Sized,
{
    let stats = &shared.stats;
    match shared.cache.resolve(key) {
        PilotTicket::Cached(pilot) => {
            stats.cache_hits.fetch_add(1, Ordering::Relaxed);
            run_contained(
                config,
                spec,
                train,
                holdout,
                pool,
                scratch,
                seed,
                Some(&pilot),
                false,
                control,
            )
            .map(|(outcome, _, rung)| (outcome, rung))
        }
        PilotTicket::Wait(inflight) => {
            stats.coalesced_waits.fetch_add(1, Ordering::Relaxed);
            // The leader publishes exactly one terminal result; share
            // its failure rather than stampeding retrains.
            let pilot = inflight.wait()?;
            run_contained(
                config,
                spec,
                train,
                holdout,
                pool,
                scratch,
                seed,
                Some(&pilot),
                false,
                control,
            )
            .map(|(outcome, _, rung)| (outcome, rung))
        }
        PilotTicket::Lead => {
            match run_contained(
                config, spec, train, holdout, pool, scratch, seed, None, true, control,
            ) {
                Ok((outcome, Some(pilot), rung)) => {
                    stats.pilot_trains.fetch_add(1, Ordering::Relaxed);
                    shared.cache.complete(key, Arc::new(pilot));
                    Ok((outcome, rung))
                }
                Ok((outcome, None, rung)) => {
                    // `run_train` always returns pilot artifacts when
                    // asked; retire the entry defensively so a future
                    // regression degrades to cache misses, not a wedge.
                    debug_assert!(false, "leader run returned no pilot artifacts");
                    shared.cache.fail(
                        key,
                        ServeError::Train(CoreError::InvalidConfig(
                            "pilot artifacts missing from leader run".into(),
                        )),
                    );
                    Ok((outcome, rung))
                }
                Err(e) => {
                    shared.cache.fail(key, e.clone());
                    Err(e)
                }
            }
        }
    }
}

/// The streaming-dataset query workflow: pin an epoch snapshot, then
/// walk the drift ladder. A current-epoch pilot serves the full
/// workflow directly; a cached pilot from a recent epoch is
/// drift-tested and either reused (full workflow on **its** snapshot),
/// served as-is with an honestly recomputed inflated ε
/// ([`DegradationRung::StalePilot`]), or abandoned into a retrain at
/// the current epoch — warm-started from the stale θ under
/// [`WarmStartPolicy::PathFollow`] (the coordinator falls back to a
/// cold start on line-search failure, mirroring the sweep rule).
/// Returns the outcome, the rung, and the epoch the response is
/// bit-reproducible against.
#[allow(clippy::too_many_arguments)]
fn serve_stream_query<F, S>(
    base: &BlinkMlConfig,
    spec: &S,
    stream: &StreamShard<F>,
    shared: &Shared,
    scratch: &mut CaptureScratch,
    query: &Query,
    token: &Arc<CancelToken>,
    shed_degraded: bool,
) -> Result<(TrainingOutcome, DegradationRung, u64), ServeError>
where
    F: FeatureVec,
    S: ModelClassSpec<F> + ?Sized,
{
    let mut config = base.clone();
    config.epsilon = query.epsilon;
    config.delta = query.delta;
    if let Some(n0) = query.initial_sample_size {
        config.initial_sample_size = n0;
    }
    config.validate()?;
    config.exec.apply();

    let serve = &shared.serve;
    let stats = &shared.stats;
    // Everything below trains and reports against exactly one epoch
    // snapshot — this one, or the found pilot's own.
    let snapshot = stream.pool.snapshot();
    let epoch = snapshot.epoch();
    let n0 = config.initial_sample_size.min(snapshot.train_len());
    let key: PilotKey = (stream.id, epoch, n0, query.seed);
    let mut control = RunControl {
        cancel: Some(token.clone()),
        pilot_only: shed_degraded,
        relax_fraction: serve.relax_fraction,
        pilot_warm_start: None,
    };

    // 1. A pilot for the current epoch: no drift by construction.
    if let Some(pilot) = shared.cache.lookup(&key) {
        stats.cache_hits.fetch_add(1, Ordering::Relaxed);
        let train = snapshot.train_dataset();
        let holdout = snapshot.holdout_dataset();
        let pool = build_pool(spec, &train, &config);
        return run_contained(
            config,
            spec,
            &train,
            &holdout,
            pool.as_ref(),
            scratch,
            query.seed,
            Some(&pilot),
            false,
            &control,
        )
        .map(|(outcome, _, rung)| (outcome, rung, epoch));
    }

    // 2. Scan recent epochs (bounded by the staleness budget) for a
    // cached pilot of this query and drift-test the newest one found.
    let lookback = serve.max_stale_epochs.min(MAX_DRIFT_LOOKBACK).min(epoch);
    let mut found: Option<(u64, Arc<PilotState>)> = None;
    for back in 1..=lookback {
        let e = epoch - back;
        let Some(mark) = snapshot.mark_at(e) else {
            break;
        };
        let n0_e = config.initial_sample_size.min(mark.train_len);
        if let Some(pilot) = shared.cache.lookup(&(stream.id, e, n0_e, query.seed)) {
            found = Some((e, pilot));
            break;
        }
    }
    if let Some((e, pilot)) = found {
        let score = drift_score(spec, &snapshot, e, pilot.model.parameters());
        if score <= serve.drift_warn {
            // Fresh enough: the full workflow on the pilot's own
            // snapshot — bit-equal to a cold run at epoch `e`.
            stats.drift_fresh.fetch_add(1, Ordering::Relaxed);
            let snap = stream
                .pool
                .snapshot_at(e)
                .expect("marks retain every epoch");
            let train = snap.train_dataset();
            let holdout = snap.holdout_dataset();
            let pool = build_pool(spec, &train, &config);
            return run_contained(
                config,
                spec,
                &train,
                &holdout,
                pool.as_ref(),
                scratch,
                query.seed,
                Some(&pilot),
                false,
                &control,
            )
            .map(|(outcome, _, rung)| (outcome, rung, e));
        }
        if score <= serve.drift_fail {
            // Stale but servable: m₀ as-is, with the honestly
            // recomputed (inflated) curve ε at n = n₀ for the data the
            // pilot actually saw.
            stats.drift_stale_served.fetch_add(1, Ordering::Relaxed);
            let snap = stream
                .pool
                .snapshot_at(e)
                .expect("marks retain every epoch");
            let holdout = snap.holdout_dataset();
            let outcome = stale_pilot_outcome(
                &config,
                spec,
                &holdout,
                &pilot,
                snap.train_len(),
                query.seed,
            );
            return Ok((outcome, DegradationRung::StalePilot, e));
        }
        // Drifted past the servable band: abandon the stale pilot and
        // lead a fresh one at the current epoch.
        stats.drift_retrains.fetch_add(1, Ordering::Relaxed);
        if serve.warm_start == WarmStartPolicy::PathFollow {
            control.pilot_warm_start = Some(pilot.model.parameters().to_vec());
        }
    }

    // 3. Cold path at the current epoch: hit / coalesce / lead, the
    // same resolution protocol as static shards.
    let train = snapshot.train_dataset();
    let holdout = snapshot.holdout_dataset();
    let pool = build_pool(spec, &train, &config);
    resolve_and_run(
        config,
        spec,
        &train,
        &holdout,
        pool.as_ref(),
        shared,
        scratch,
        query.seed,
        key,
        &control,
    )
    .map(|(outcome, rung)| (outcome, rung, epoch))
}

/// Cheap drift test for a cached pilot from `pilot_epoch` against the
/// current snapshot: the shift of the pilot's mean prediction on
/// holdout rows appended *after* its epoch, in units of the spread of
/// its predictions on the rows it was validated against. 0 when no new
/// holdout rows arrived (train-only appends change the pilot's
/// coverage, not the evidence about its task — the guarantee math
/// already accounts for `N` through the snapshot it is computed on).
fn drift_score<F, S>(spec: &S, snapshot: &StreamSnapshot<F>, pilot_epoch: u64, theta: &[f64]) -> f64
where
    F: FeatureVec,
    S: ModelClassSpec<F> + ?Sized,
{
    let Some(mark) = snapshot.mark_at(pilot_epoch) else {
        return f64::INFINITY;
    };
    let base_len = mark.holdout_len;
    let now_len = snapshot.holdout_len();
    if now_len <= base_len {
        return 0.0;
    }
    if base_len == 0 {
        return f64::INFINITY;
    }
    let base = snapshot.holdout_rows(0, base_len);
    let fresh = snapshot.holdout_rows(base_len, now_len);
    let mean = |rows: &[blinkml_data::Example<F>]| {
        rows.iter().map(|r| spec.predict(theta, &r.x)).sum::<f64>() / rows.len() as f64
    };
    let base_mean = mean(&base);
    let fresh_mean = mean(&fresh);
    let base_var = base
        .iter()
        .map(|r| {
            let d = spec.predict(theta, &r.x) - base_mean;
            d * d
        })
        .sum::<f64>()
        / base_len as f64;
    (fresh_mean - base_mean).abs() / base_var.sqrt().max(1e-9)
}

/// Build the [`DegradationRung::StalePilot`] response: the cached `m₀`
/// served as-is, reporting the honestly recomputed curve ε at `n = n₀`
/// on the pilot's **own** snapshot — exactly the value
/// [`Coordinator::curve_epsilon_at`](crate::Coordinator::curve_epsilon_at)
/// returns for `(train_e, holdout_e, seed, n₀)` on that snapshot's
/// materialized datasets.
fn stale_pilot_outcome<F, S>(
    config: &BlinkMlConfig,
    spec: &S,
    holdout: &Dataset<F>,
    pilot: &PilotState,
    full_n: usize,
    seed: u64,
) -> TrainingOutcome
where
    F: FeatureVec,
    S: ModelClassSpec<F> + ?Sized,
{
    let n0 = pilot.n0;
    let eps0 = match pilot.stats.as_ref() {
        Some(stats) if n0 < full_n => {
            let scorer = HoldoutScorer::new(spec, holdout, pilot.model.parameters());
            let sse = SampleSizeEstimator::new(config.num_param_samples);
            sse.epsilon_at_scored(
                &scorer,
                stats,
                n0,
                n0,
                full_n,
                config.delta,
                split_seed(seed, 2),
            )
        }
        // n₀ = N at the pilot's epoch: the pilot is exact for it.
        _ => 0.0,
    };
    TrainingOutcome {
        model: pilot.model.clone(),
        sample_size: n0,
        full_data_size: full_n,
        initial_epsilon: eps0,
        estimated_epsilon: eps0,
        used_initial_model: true,
        phases: TrainingPhaseTimes::default(),
        search_probes: 0,
    }
}

/// The sweep workflow behind [`process_job`]: configure the contract,
/// run the fused sweep engine against the shard's pool (pilot cache
/// bypassed — sweep pilots are λ-dependent), with panics contained the
/// same way training queries contain them.
#[allow(clippy::too_many_arguments)]
fn serve_sweep<F, S>(
    base: &BlinkMlConfig,
    spec: &S,
    train: &Dataset<F>,
    holdout: &Dataset<F>,
    pool: Option<&DatasetMatrix<'_>>,
    scratch: &mut CaptureScratch,
    query: &SweepQuery,
) -> Result<SweepResult, ServeError>
where
    F: FeatureVec,
    S: ModelClassSpec<F> + ?Sized,
{
    let mut config = base.clone();
    config.epsilon = query.epsilon;
    config.delta = query.delta;
    if let Some(n0) = query.initial_sample_size {
        config.initial_sample_size = n0;
    }
    config.validate()?;
    config.exec.apply();

    let plan = SweepPlan::new(
        query.lambdas.clone(),
        query.epsilon,
        query.delta,
        query.seed,
    )
    .with_warm_start(query.warm_start);
    let attempt = catch_unwind(AssertUnwindSafe(|| {
        run_sweep(&config, spec, train, holdout, pool, scratch, &plan)
    }));
    match attempt {
        Ok(Ok(result)) => Ok(result),
        Ok(Err(e)) => Err(ServeError::Train(e)),
        Err(payload) => Err(ServeError::WorkerPanicked(panic_message(payload))),
    }
}

/// Run the coordinator workflow with panics contained to this job:
/// a panic inside training (e.g. a library bug or a pathological
/// dataset) becomes [`ServeError::WorkerPanicked`] instead of killing
/// the worker, so one bad query cannot take the queue down.
/// Cancellation errors (the fail-fast floor of the ladder) surface as
/// [`ServeError::DeadlineExceeded`].
#[allow(clippy::too_many_arguments)]
fn run_contained<F, S>(
    config: BlinkMlConfig,
    spec: &S,
    train: &Dataset<F>,
    holdout: &Dataset<F>,
    pool: Option<&DatasetMatrix<'_>>,
    scratch: &mut CaptureScratch,
    seed: u64,
    pilot: Option<&PilotState>,
    want_pilot: bool,
    control: &RunControl,
) -> Result<(TrainingOutcome, Option<PilotState>, DegradationRung), ServeError>
where
    F: FeatureVec,
    S: ModelClassSpec<F> + ?Sized,
{
    let attempt = catch_unwind(AssertUnwindSafe(|| {
        run_train_controlled(
            &config, spec, train, holdout, pool, scratch, seed, pilot, want_pilot, control,
        )
    }));
    match attempt {
        Ok(Ok(result)) => Ok(result),
        Ok(Err(e)) if e.is_cancellation() => Err(ServeError::DeadlineExceeded),
        Ok(Err(e)) => Err(ServeError::Train(e)),
        Err(payload) => Err(ServeError::WorkerPanicked(panic_message(payload))),
    }
}

/// Render a caught panic payload for [`ServeError::WorkerPanicked`].
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    payload
        .downcast_ref::<&str>()
        .map(|s| s.to_string())
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "non-string panic payload".into())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coordinator::Coordinator;
    use crate::models::logreg::LogisticRegressionSpec;
    use blinkml_data::generators::synthetic_logistic;
    use blinkml_data::DenseVec;

    fn base_config(n0: usize) -> BlinkMlConfig {
        BlinkMlConfig {
            epsilon: 0.05,
            delta: 0.05,
            initial_sample_size: n0,
            holdout_size: 500,
            num_param_samples: 16,
            ..BlinkMlConfig::default()
        }
    }

    fn shard(version: u64, n: usize, seed: u64) -> DatasetShard<DenseVec> {
        let (data, _) = synthetic_logistic(n, 4, 2.0, seed);
        let split = data.split(600, 0, seed + 100);
        DatasetShard::new(version, split.train, split.holdout)
    }

    #[test]
    fn served_response_matches_cold_coordinator() {
        let sh = shard(1, 6_000, 21);
        let spec = LogisticRegressionSpec::new(1e-3);
        let server = Server::spawn(
            base_config(300),
            ServeConfig::default(),
            spec.clone(),
            vec![sh.clone()],
        )
        .unwrap();
        for (eps, delta, seed) in [(0.20, 0.05, 3), (0.03, 0.05, 3), (0.10, 0.10, 4)] {
            let served = server.query(Query::new(1, eps, delta, seed)).unwrap();
            let mut cfg = base_config(300);
            cfg.epsilon = eps;
            cfg.delta = delta;
            let cold = Coordinator::new(cfg)
                .train_with_holdout(&spec, &sh.train, &sh.holdout, seed)
                .unwrap();
            assert_eq!(served.outcome.sample_size, cold.sample_size);
            assert_eq!(served.outcome.initial_epsilon, cold.initial_epsilon);
            assert_eq!(served.outcome.estimated_epsilon, cold.estimated_epsilon);
            assert_eq!(served.outcome.model.parameters(), cold.model.parameters());
        }
        let stats = server.stats();
        // Seeds {3, 4} → two pilots; the second ε at seed 3 hits.
        assert_eq!(stats.pilot_trains, 2);
        assert_eq!(stats.cache_hits, 1);
        assert_eq!(stats.completed, 3);
        assert_eq!(stats.inflight, 0);
        server.shutdown();
    }

    #[test]
    fn served_sweep_matches_session_and_counts() {
        let sh = shard(1, 6_000, 41);
        let spec = LogisticRegressionSpec::new(1e-3);
        let server = Server::spawn(
            base_config(300),
            ServeConfig::default(),
            spec.clone(),
            vec![sh.clone()],
        )
        .unwrap();
        let lambdas = vec![0.1, 1e-3];
        let served = server
            .sweep(SweepQuery::new(1, lambdas.clone(), 0.03, 0.05, 7))
            .unwrap();
        assert!(served.result.fused);
        let session = crate::session::Session::new(
            base_config(300),
            &spec,
            sh.train.as_ref(),
            sh.holdout.as_ref(),
        )
        .unwrap();
        let local = session.sweep(&lambdas, 0.03, 0.05, 7).unwrap();
        for (a, b) in served.result.points.iter().zip(&local.points) {
            assert_eq!(a.outcome.model.parameters(), b.outcome.model.parameters());
            assert_eq!(a.outcome.sample_size, b.outcome.sample_size);
            assert_eq!(a.outcome.initial_epsilon, b.outcome.initial_epsilon);
            assert_eq!(a.outcome.estimated_epsilon, b.outcome.estimated_epsilon);
        }
        let stats = server.stats();
        assert_eq!(stats.sweep_queries, 1);
        assert_eq!(stats.completed, 1);
        assert_eq!(stats.cached_pilots, 0, "sweeps bypass the pilot cache");
        assert_eq!(
            stats.warm_starts_taken, 0,
            "ExactReplay takes no warm starts"
        );
        assert_eq!(stats.warm_starts_rejected, 0);

        // Path-following sweeps surface their warm-start counters.
        let pf = server
            .sweep(
                SweepQuery::new(1, vec![1.0, 1e-2, 1e-4], 0.02, 0.05, 9)
                    .with_warm_start(WarmStartPolicy::PathFollow),
            )
            .unwrap();
        let trained = pf
            .result
            .points
            .iter()
            .filter(|p| !p.outcome.used_initial_model)
            .count();
        let stats = server.stats();
        assert_eq!(stats.sweep_queries, 2);
        assert_eq!(
            stats.warm_starts_taken as usize,
            pf.result.warm_starts_taken
        );
        assert_eq!(
            stats.warm_starts_rejected as usize,
            pf.result.warm_starts_rejected
        );
        if trained > 1 {
            assert_eq!(
                (stats.warm_starts_taken + stats.warm_starts_rejected) as usize,
                trained - 1
            );
        }
        server.shutdown();
    }

    #[test]
    fn unknown_dataset_fails_fast() {
        let server = Server::spawn(
            base_config(200),
            ServeConfig::default(),
            LogisticRegressionSpec::new(1e-3),
            vec![shard(7, 3_000, 5)],
        )
        .unwrap();
        assert!(matches!(
            server.submit(Query::new(8, 0.1, 0.05, 1)),
            Err(ServeError::UnknownDataset(8))
        ));
        assert_eq!(server.stats().submitted, 0);
    }

    #[test]
    fn invalid_contract_resolves_to_error_without_wedging() {
        let server = Server::spawn(
            base_config(200),
            ServeConfig::default(),
            LogisticRegressionSpec::new(1e-3),
            vec![shard(1, 3_000, 6)],
        )
        .unwrap();
        let err = server.query(Query::new(1, 0.0, 0.05, 1));
        assert!(matches!(err, Err(ServeError::Train(_))), "{err:?}");
        // The queue keeps serving after the failure.
        let ok = server.query(Query::new(1, 0.2, 0.05, 1)).unwrap();
        assert!(ok.outcome.sample_size > 0);
        let stats = server.stats();
        assert_eq!(stats.failed, 1);
        assert_eq!(stats.completed, 1);
        assert_eq!(stats.inflight, 0);
    }

    #[test]
    fn rejects_bad_spawn_inputs() {
        let spec = LogisticRegressionSpec::new(1e-3);
        // No datasets.
        assert!(Server::spawn(
            base_config(200),
            ServeConfig::default(),
            spec.clone(),
            Vec::<DatasetShard<DenseVec>>::new(),
        )
        .is_err());
        // Duplicate versions.
        assert!(Server::spawn(
            base_config(200),
            ServeConfig::default(),
            spec.clone(),
            vec![shard(1, 2_000, 1), shard(1, 2_000, 2)],
        )
        .is_err());
        // Empty pool / holdout.
        let empty = Arc::new(Dataset::<DenseVec>::new("empty", 4, vec![]));
        let sh = shard(1, 2_000, 3);
        assert!(Server::spawn(
            base_config(200),
            ServeConfig::default(),
            spec.clone(),
            vec![DatasetShard::from_arcs(
                1,
                empty.clone(),
                sh.holdout.clone()
            )],
        )
        .is_err());
        assert!(Server::spawn(
            base_config(200),
            ServeConfig::default(),
            spec,
            vec![DatasetShard::from_arcs(1, sh.train.clone(), empty)],
        )
        .is_err());
    }

    #[test]
    fn shutdown_drain_rejects_new_queries_but_drains_accepted_ones() {
        let server = Server::spawn(
            base_config(200),
            ServeConfig {
                workers: 1,
                ..ServeConfig::default()
            },
            LogisticRegressionSpec::new(1e-3),
            vec![shard(1, 3_000, 9)],
        )
        .unwrap();
        let pending: Vec<_> = (0..3)
            .map(|i| server.submit(Query::new(1, 0.25, 0.05, i)).unwrap())
            .collect();
        server.shutdown_drain();
        for handle in pending {
            assert!(handle.wait().is_ok(), "accepted queries resolve");
        }
    }

    #[test]
    fn abort_shutdown_resolves_every_queued_ticket_as_closed() {
        // A saturated single worker: whatever job it has started is
        // drained normally; everything still queued resolves `Closed`.
        let server = Server::spawn(
            base_config(200),
            ServeConfig {
                workers: 1,
                ..ServeConfig::default()
            },
            LogisticRegressionSpec::new(1e-3),
            vec![shard(1, 3_000, 9)],
        )
        .unwrap();
        let pending: Vec<_> = (0..4)
            .map(|i| server.submit(Query::new(1, 0.25, 0.05, i)).unwrap())
            .collect();
        server.shutdown();
        let mut resolved = 0;
        let mut closed = 0;
        for handle in pending {
            match handle.wait() {
                Ok(_) => resolved += 1,
                Err(ServeError::Closed) => closed += 1,
                Err(e) => panic!("unexpected shutdown error: {e}"),
            }
        }
        // No ticket may be lost; at least the still-queued tail aborts.
        assert_eq!(resolved + closed, 4, "every ticket resolves exactly once");
        assert!(closed >= 1, "an idle 1-worker server cannot drain 4 jobs");
    }

    #[test]
    fn per_query_n0_override_is_part_of_the_key() {
        let sh = shard(1, 5_000, 31);
        let server = Server::spawn(
            base_config(300),
            ServeConfig::default(),
            LogisticRegressionSpec::new(1e-3),
            vec![sh],
        )
        .unwrap();
        let q = Query::new(1, 0.2, 0.05, 2);
        server.query(q).unwrap();
        server.query(q.with_initial_sample_size(400)).unwrap();
        let stats = server.stats();
        assert_eq!(stats.pilot_trains, 2, "distinct n₀ → distinct pilots");
        assert_eq!(stats.cached_pilots, 2);
    }
}
