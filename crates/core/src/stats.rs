//! Statistics computation: the covariance factor behind Theorem 1.
//!
//! Everything downstream of training needs samples from
//! `N(0, H⁻¹ J H⁻¹)` (paper Corollary 1). This module computes a factor
//! `L` with `L Lᵀ = H⁻¹ J H⁻¹` by one of the paper's three methods
//! (§3.4) and wraps it as a [`ModelStatistics`] implementing
//! [`CovarianceFactor`], so the samplers never materialize a `D × D`
//! matrix:
//!
//! * **ObservedFisher** (default): `J` from the per-example gradients via
//!   the information matrix equality, `H = J + βI`. When `D ≤ n` the
//!   factor is explicit (`L = U diag(√λ/(λ+β))` from the
//!   eigendecomposition of `J`); when `D > n` only the `n × n` Gram
//!   matrix is decomposed and `L z = Q'ᵀ V diag(1/(λ+β)) z` is applied
//!   implicitly through the gradient rows (paper §4.3).
//! * **ClosedForm**: analytic `H`; `J = H − βI` by the equality.
//! * **InverseGradients**: finite-difference `H` from `D` probes of the
//!   averaged gradient; `J = H − βI`.
//!
//! Every method's eigendecomposition runs through a pluggable *spectral
//! engine* ([`SpectralMethod`]): the exact dense `tred2`/`tql2` solver,
//! or the truncated randomized solver of `blinkml_linalg::spectral`,
//! which probes matrix-free [`Grads`] operators with blocked GEMMs and
//! never materializes the second-moment or Gram matrix at all.

use crate::config::{SpectralMethod, StatisticsMethod};
use crate::error::CoreError;
use crate::grads::Grads;
use crate::mcs::ModelClassSpec;
use blinkml_data::{Dataset, DatasetMatrix, FeatureVec, MatrixView, TrainScratch};
use blinkml_linalg::spectral::{randomized_eigen, DenseSymmetricOp};
use blinkml_linalg::{blas, Matrix, SymmetricEigen};
use blinkml_prob::CovarianceFactor;

/// Relative eigenvalue cutoff below which covariance directions are
/// dropped (guards `1/λ` blow-ups along symmetry/null directions, e.g.
/// PPCA's rotation orbits).
const EIGEN_TOLERANCE: f64 = 1e-10;

/// Finite-difference probe size for InverseGradients (paper default
/// `ϵ = 10⁻⁶`).
const PROBE_EPSILON: f64 = 1e-6;

/// A factor `L` with `L Lᵀ = H⁻¹ J H⁻¹`, in explicit or implicit form.
///
/// `pub(crate)` (not `pub`) so the warm-state sidecar can serialize the
/// factor **in its stored form** — an implicit factor must round-trip
/// as implicit, because the explicit and implicit branches take
/// different (bit-exact but distinct) floating-point paths when
/// sampling parameter draws.
#[derive(Debug, Clone)]
pub(crate) enum Factor {
    /// Dense `D × k` factor.
    Explicit(Matrix),
    /// Implicit factor through the gradient rows:
    /// `L z = Q'ᵀ (V diag(1/(λ+β)) z)`.
    Implicit {
        /// Gram eigenvectors (`n × k`).
        v: Matrix,
        /// Gram eigenvalues (`k`), descending.
        lambda: Vec<f64>,
        /// The gradient rows (kept alive for `Q'ᵀ` application).
        grads: Grads,
        /// L2 coefficient β.
        beta: f64,
    },
}

/// The computed statistics of a trained model: a sampling-ready factor
/// of the parameter covariance `H⁻¹ J H⁻¹`.
#[derive(Debug, Clone)]
pub struct ModelStatistics {
    dim: usize,
    factor: Factor,
}

impl ModelStatistics {
    /// Parameter dimension `D`.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The stored covariance factor (sidecar serialization only).
    pub(crate) fn factor(&self) -> &Factor {
        &self.factor
    }

    /// Rebuild statistics from a deserialized factor (sidecar only).
    pub(crate) fn from_parts(dim: usize, factor: Factor) -> Self {
        ModelStatistics { dim, factor }
    }

    /// Rank of the factor (number of standard-normal inputs consumed per
    /// draw).
    pub fn rank(&self) -> usize {
        match &self.factor {
            Factor::Explicit(l) => l.cols(),
            Factor::Implicit { lambda, .. } => lambda.len(),
        }
    }

    /// Per-coordinate variances `diag(H⁻¹JH⁻¹)` — the quantity compared
    /// against empirical parameter variances in the paper's Fig 9a.
    ///
    /// The implicit branch runs **one** blocked `Ψᵀ` pass over the
    /// gradient rows ([`Grads::t_apply_rows`]) instead of `k` separate
    /// `t_apply` sweeps; each batched row is bitwise the value the
    /// per-column sweep produced.
    pub fn marginal_variances(&self) -> Vec<f64> {
        match &self.factor {
            Factor::Explicit(l) => {
                let mut out = vec![0.0; l.rows()];
                for (i, o) in out.iter_mut().enumerate() {
                    *o = l.row(i).iter().map(|v| v * v).sum();
                }
                out
            }
            Factor::Implicit {
                v,
                lambda,
                grads,
                beta,
            } => {
                let lt = implicit_factor_rows(v, grads);
                let mut out = vec![0.0; self.dim];
                for (j, &lam) in lambda.iter().enumerate() {
                    let scale = 1.0 / (lam + beta);
                    for (o, &lji) in out.iter_mut().zip(lt.row(j)) {
                        let val = lji * scale;
                        *o += val * val;
                    }
                }
                out
            }
        }
    }

    /// Materialize the dense covariance `L Lᵀ` (`O(D²k)`; tests and the
    /// Fig 9b Frobenius comparison only). The implicit factor is built
    /// with the same single blocked pass as
    /// [`ModelStatistics::marginal_variances`].
    pub fn covariance_dense(&self) -> Matrix {
        match &self.factor {
            Factor::Explicit(l) => blas::gemm_nt(l, l).expect("square product"),
            Factor::Implicit {
                v,
                lambda,
                grads,
                beta,
            } => {
                let lt = implicit_factor_rows(v, grads);
                let k = lambda.len();
                let mut l = Matrix::zeros(self.dim, k);
                for (j, &lam) in lambda.iter().enumerate() {
                    let scale = 1.0 / (lam + beta);
                    for i in 0..self.dim {
                        l[(i, j)] = lt[(j, i)] * scale;
                    }
                }
                blas::gemm_nt(&l, &l).expect("square product")
            }
        }
    }
}

/// The implicit factor, one row per Gram eigenvector: row `j` is
/// `Ψᵀ v_j / √n` — all columns of `L` (up to their `1/(λ+β)` scaling)
/// from a single batched pass over the gradient rows.
fn implicit_factor_rows(v: &Matrix, grads: &Grads) -> Matrix {
    grads.t_apply_rows(&v.transpose())
}

impl CovarianceFactor for ModelStatistics {
    fn input_dim(&self) -> usize {
        self.rank()
    }

    fn output_dim(&self) -> usize {
        self.dim
    }

    fn apply(&self, z: &[f64]) -> Vec<f64> {
        match &self.factor {
            Factor::Explicit(l) => blas::gemv(l, z).expect("factor dims"),
            Factor::Implicit {
                v,
                lambda,
                grads,
                beta,
            } => {
                // w = V diag(1/(λ+β)) z, then L z = Q'ᵀ w.
                let scaled: Vec<f64> = z
                    .iter()
                    .zip(lambda)
                    .map(|(zi, lam)| zi / (lam + beta))
                    .collect();
                let w = blas::gemv(v, &scaled).expect("factor dims");
                grads.t_apply(&w)
            }
        }
    }

    fn apply_batch(&self, z: &Matrix) -> Matrix {
        assert_eq!(z.cols(), self.rank(), "apply_batch: input mismatch");
        match &self.factor {
            // Z Lᵀ: every entry is the same dot the per-draw gemv
            // computes, so the batch is bitwise identical per row.
            Factor::Explicit(l) => blas::par_gemm_nt(z, l).expect("factor dims"),
            Factor::Implicit {
                v,
                lambda,
                grads,
                beta,
            } => {
                // Row-wise: scaled = z/(λ+β), w = V·scaled, out = Q'ᵀw —
                // the per-draw pipeline fused into two blocked kernels
                // that preserve its accumulation order exactly.
                let mut scaled = z.clone();
                for i in 0..scaled.rows() {
                    for (s, lam) in scaled.row_mut(i).iter_mut().zip(lambda) {
                        *s /= lam + beta;
                    }
                }
                let w = blas::par_gemm_nt(&scaled, v).expect("factor dims");
                grads.t_apply_rows(&w)
            }
        }
    }
}

/// Compute model statistics with the requested method and the exact
/// dense spectral engine.
pub fn compute_statistics<F: FeatureVec, S: ModelClassSpec<F> + ?Sized>(
    method: StatisticsMethod,
    spec: &S,
    theta: &[f64],
    data: &Dataset<F>,
) -> Result<ModelStatistics, CoreError> {
    compute_statistics_spectral(method, SpectralMethod::Dense, spec, theta, data)
}

/// Compute model statistics with the requested method and spectral
/// engine (the knob threaded from `BlinkMlConfig::spectral`).
pub fn compute_statistics_spectral<F: FeatureVec, S: ModelClassSpec<F> + ?Sized>(
    method: StatisticsMethod,
    spectral: SpectralMethod,
    spec: &S,
    theta: &[f64],
    data: &Dataset<F>,
) -> Result<ModelStatistics, CoreError> {
    compute_statistics_cached(method, spectral, spec, theta, data, None)
}

/// [`compute_statistics_spectral`] with an optionally cached
/// design-matrix view of the sample. The coordinator reuses the view it
/// already served for training — a full view of a materialized sample,
/// or a gathered index view over the pool matrix (in which case `data`
/// is the pool) — so the statistics phase's `grads` / Hessian /
/// gradient probes run through the batched kernels without a second
/// materialization, and on the zero-copy path without any
/// materialization at all.
pub fn compute_statistics_cached<F: FeatureVec, S: ModelClassSpec<F> + ?Sized>(
    method: StatisticsMethod,
    spectral: SpectralMethod,
    spec: &S,
    theta: &[f64],
    data: &Dataset<F>,
    xm: Option<&MatrixView>,
) -> Result<ModelStatistics, CoreError> {
    match method {
        StatisticsMethod::ObservedFisher => observed_fisher_cached(spec, theta, data, spectral, xm),
        StatisticsMethod::ClosedForm => closed_form_cached(spec, theta, data, spectral, xm),
        StatisticsMethod::InverseGradients => {
            inverse_gradients_cached(spec, theta, data, spectral, xm)
        }
    }
}

/// ObservedFisher (paper §3.4 Method 3) with the exact dense engine.
pub fn observed_fisher<F: FeatureVec, S: ModelClassSpec<F> + ?Sized>(
    spec: &S,
    theta: &[f64],
    data: &Dataset<F>,
) -> Result<ModelStatistics, CoreError> {
    observed_fisher_spectral(spec, theta, data, SpectralMethod::Dense)
}

/// ObservedFisher (paper §3.4 Method 3): factor `J` from per-example
/// gradients without forming any `D × D` matrix when `D > n`.
///
/// With [`SpectralMethod::Dense`] the second-moment or Gram matrix is
/// materialized and fully eigendecomposed (`O(min(D,n)³)`). With
/// [`SpectralMethod::Randomized`] **neither matrix is ever formed**: the
/// truncated solver probes the matrix-free [`Grads`] operators (two
/// blocked GEMMs per apply) and resolves only the dominant eigenpairs —
/// `O(min(D,n)²·r)` — with the rank-truncation tolerance folded into the
/// eigenvalue cutoff below so the factored covariance only ever *drops*
/// tail directions the tolerance already bounds.
pub fn observed_fisher_spectral<F: FeatureVec, S: ModelClassSpec<F> + ?Sized>(
    spec: &S,
    theta: &[f64],
    data: &Dataset<F>,
    spectral: SpectralMethod,
) -> Result<ModelStatistics, CoreError> {
    observed_fisher_cached(spec, theta, data, spectral, None)
}

/// [`observed_fisher_spectral`] with an optionally cached design-matrix
/// view: the per-example gradient list is built through the batched
/// margin kernels instead of a fresh example walk.
pub fn observed_fisher_cached<F: FeatureVec, S: ModelClassSpec<F> + ?Sized>(
    spec: &S,
    theta: &[f64],
    data: &Dataset<F>,
    spectral: SpectralMethod,
    xm: Option<&MatrixView>,
) -> Result<ModelStatistics, CoreError> {
    let grads = spec.grads_cached(theta, data, xm);
    let beta = spec.regularization();
    let n = grads.num_rows();
    let dim = grads.dim();
    if dim <= n {
        // Small-parameter regime: eigenpairs of J, explicit factor.
        let (eigenvalues, eigenvectors) = match spectral {
            SpectralMethod::Dense => {
                let mut j = grads.second_moment();
                j.symmetrize();
                let eig = SymmetricEigen::new(&j)?;
                (eig.eigenvalues, eig.eigenvectors)
            }
            SpectralMethod::Randomized {
                rank,
                oversample,
                power_iters,
                tol,
            } => {
                let eig = randomized_eigen(
                    &grads.second_moment_op(),
                    rank,
                    oversample,
                    power_iters,
                    tol,
                )?;
                (eig.eigenvalues, eig.eigenvectors)
            }
        };
        let l = explicit_factor_from_j(&eigenvalues, &eigenvectors, beta, cutoff_tol(spectral));
        Ok(ModelStatistics {
            dim,
            factor: Factor::Explicit(l),
        })
    } else {
        // High-dimensional regime: the n × n Gram matrix shares J's
        // nonzero spectrum; keep the factor implicit.
        let (eigenvalues, eigenvectors) = match spectral {
            SpectralMethod::Dense => {
                let mut g = grads.gram();
                g.symmetrize();
                let eig = SymmetricEigen::new(&g)?;
                (eig.eigenvalues, eig.eigenvectors)
            }
            SpectralMethod::Randomized {
                rank,
                oversample,
                power_iters,
                tol,
            } => {
                let eig = randomized_eigen(&grads.gram_op(), rank, oversample, power_iters, tol)?;
                (eig.eigenvalues, eig.eigenvectors)
            }
        };
        let lmax = eigenvalues.first().copied().unwrap_or(0.0).max(0.0);
        let cutoff = lmax * cutoff_tol(spectral);
        let k = eigenvalues
            .iter()
            .take_while(|&&l| l > cutoff && l > 0.0)
            .count();
        let mut v = Matrix::zeros(n, k);
        for c in 0..k {
            for r in 0..n {
                v[(r, c)] = eigenvectors[(r, c)];
            }
        }
        Ok(ModelStatistics {
            dim,
            factor: Factor::Implicit {
                v,
                lambda: eigenvalues[..k].to_vec(),
                grads,
                beta,
            },
        })
    }
}

/// Relative eigenvalue cutoff for the given spectral engine: the dense
/// guard, widened to the randomized solver's tail tolerance so the
/// directions a truncated run drops are exactly the ones its tail bound
/// covers (keeping the conservative quantile honest).
fn cutoff_tol(spectral: SpectralMethod) -> f64 {
    match spectral {
        SpectralMethod::Dense => EIGEN_TOLERANCE,
        SpectralMethod::Randomized { tol, .. } => tol.max(EIGEN_TOLERANCE),
    }
}

/// `L = U diag(√λ/(λ+β))` from eigenpairs of `J`, truncated at the
/// relative eigenvalue tolerance `rel_tol`.
fn explicit_factor_from_j(
    eigenvalues: &[f64],
    eigenvectors: &Matrix,
    beta: f64,
    rel_tol: f64,
) -> Matrix {
    let d = eigenvectors.rows();
    let lmax = eigenvalues.first().copied().unwrap_or(0.0).max(0.0);
    let cutoff = lmax * rel_tol;
    let k = eigenvalues
        .iter()
        .take_while(|&&l| l > cutoff && l > 0.0)
        .count();
    let mut l = Matrix::zeros(d, k);
    for j in 0..k {
        let lam = eigenvalues[j];
        let scale = lam.sqrt() / (lam + beta);
        for i in 0..d {
            l[(i, j)] = scale * eigenvectors[(i, j)];
        }
    }
    l
}

/// Build ObservedFisher-style statistics directly from eigenpairs of
/// `J` — the streaming incremental-moments path
/// ([`crate::moments::IncrementalSecondMoment`]) maintains the
/// eigendecomposition itself, so the factor `L = U diag(√λ/(λ+β))`
/// comes straight from the maintained pairs with the same truncation
/// guard the cold ObservedFisher path applies.
pub(crate) fn statistics_from_eigenpairs(
    dim: usize,
    eigenvalues: &[f64],
    eigenvectors: &Matrix,
    beta: f64,
    spectral: SpectralMethod,
) -> ModelStatistics {
    let l = explicit_factor_from_j(eigenvalues, eigenvectors, beta, cutoff_tol(spectral));
    ModelStatistics {
        dim,
        factor: Factor::Explicit(l),
    }
}

/// ClosedForm (paper §3.4 Method 1) with the exact dense engine.
pub fn closed_form<F: FeatureVec, S: ModelClassSpec<F> + ?Sized>(
    spec: &S,
    theta: &[f64],
    data: &Dataset<F>,
) -> Result<ModelStatistics, CoreError> {
    closed_form_spectral(spec, theta, data, SpectralMethod::Dense)
}

/// ClosedForm (paper §3.4 Method 1): analytic `H`, then
/// `J = H − βI` by the information matrix equality. The randomized
/// engine replaces the `O(D³)` eigendecomposition of `H` with the
/// truncated solver over the dense operator.
pub fn closed_form_spectral<F: FeatureVec, S: ModelClassSpec<F> + ?Sized>(
    spec: &S,
    theta: &[f64],
    data: &Dataset<F>,
    spectral: SpectralMethod,
) -> Result<ModelStatistics, CoreError> {
    closed_form_cached(spec, theta, data, spectral, None)
}

/// [`closed_form_spectral`] with an optionally cached design-matrix
/// view for the batched Hessian accumulation.
pub fn closed_form_cached<F: FeatureVec, S: ModelClassSpec<F> + ?Sized>(
    spec: &S,
    theta: &[f64],
    data: &Dataset<F>,
    spectral: SpectralMethod,
    xm: Option<&MatrixView>,
) -> Result<ModelStatistics, CoreError> {
    let h = spec.closed_form_hessian_cached(theta, data, xm).ok_or(
        CoreError::UnsupportedStatistics {
            model: spec.name(),
            method: "ClosedForm",
        },
    )?;
    statistics_from_hessian(h, spec.regularization(), spectral)
}

/// InverseGradients (paper §3.4 Method 2) with the exact dense engine.
pub fn inverse_gradients<F: FeatureVec, S: ModelClassSpec<F> + ?Sized>(
    spec: &S,
    theta: &[f64],
    data: &Dataset<F>,
) -> Result<ModelStatistics, CoreError> {
    inverse_gradients_spectral(spec, theta, data, SpectralMethod::Dense)
}

/// InverseGradients (paper §3.4 Method 2): numeric `H ≈ R P⁻¹` from `D`
/// finite-difference probes of the averaged gradient `g_n`, then
/// `J = H − βI`, decomposed by the chosen spectral engine.
pub fn inverse_gradients_spectral<F: FeatureVec, S: ModelClassSpec<F> + ?Sized>(
    spec: &S,
    theta: &[f64],
    data: &Dataset<F>,
    spectral: SpectralMethod,
) -> Result<ModelStatistics, CoreError> {
    inverse_gradients_cached(spec, theta, data, spectral, None)
}

/// [`inverse_gradients_spectral`] with an optionally cached
/// design-matrix view. The `D + 1` gradient probes are exactly the
/// workload the batched objective exists for, so models advertising
/// [`ModelClassSpec::batched_training`] evaluate them through the
/// batched kernels (bit-identical gradients, one shared scratch).
pub fn inverse_gradients_cached<F: FeatureVec, S: ModelClassSpec<F> + ?Sized>(
    spec: &S,
    theta: &[f64],
    data: &Dataset<F>,
    spectral: SpectralMethod,
    xm: Option<&MatrixView>,
) -> Result<ModelStatistics, CoreError> {
    let d = theta.len();
    let mut h = Matrix::zeros(d, d);
    let mut probe = theta.to_vec();
    if spec.batched_training() && !data.is_empty() {
        let owned;
        let xm = match xm {
            Some(v) => *v,
            None => {
                owned = DatasetMatrix::from_dataset(data);
                owned.view()
            }
        };
        let xm = &xm;
        let mut scratch = TrainScratch::new();
        let mut g0 = vec![0.0; d];
        spec.value_grad_batched(theta, xm, &mut scratch, &mut g0);
        let mut gi = vec![0.0; d];
        for i in 0..d {
            probe[i] += PROBE_EPSILON;
            spec.value_grad_batched(&probe, xm, &mut scratch, &mut gi);
            probe[i] = theta[i];
            for j in 0..d {
                h[(j, i)] = (gi[j] - g0[j]) / PROBE_EPSILON;
            }
        }
    } else {
        let (_, g0) = spec.objective(theta, data);
        for i in 0..d {
            probe[i] += PROBE_EPSILON;
            let (_, gi) = spec.objective(&probe, data);
            probe[i] = theta[i];
            for j in 0..d {
                h[(j, i)] = (gi[j] - g0[j]) / PROBE_EPSILON;
            }
        }
    }
    h.symmetrize();
    statistics_from_hessian(h, spec.regularization(), spectral)
}

/// Shared tail of ClosedForm / InverseGradients: from a dense symmetric
/// `H`, build the factor of `H⁻¹ J H⁻¹` with `J = H − βI` via the
/// eigendecomposition `H = V Λ Vᵀ`:
/// `H⁻¹JH⁻¹ = V diag((λ−β)/λ²) Vᵀ` — full or truncated per `spectral`.
fn statistics_from_hessian(
    h: Matrix,
    beta: f64,
    spectral: SpectralMethod,
) -> Result<ModelStatistics, CoreError> {
    let dim = h.rows();
    let mut h = h;
    h.symmetrize();
    if let SpectralMethod::Randomized {
        rank,
        oversample,
        power_iters,
        tol,
    } = spectral
    {
        // Probe the *unshifted* `J = H − βI`, not `H` itself: the β
        // shift puts a floor of β under every Ritz value of `H`, so the
        // spectral-tail convergence test could never pass and the
        // adaptive loop would grow to the full dimension — slower than
        // the dense solver. `J`'s tail decays to zero, and
        // `H⁻¹JH⁻¹ = V diag(λ_J/(λ_J+β)²) Vᵀ` only needs `J`'s
        // eigenpairs anyway (the same factor form as ObservedFisher).
        let mut j = h;
        j.add_diag(-beta);
        let eig = randomized_eigen(
            &DenseSymmetricOp::new(&j),
            rank,
            oversample,
            power_iters,
            tol,
        )?;
        let l = explicit_factor_from_j(
            &eig.eigenvalues,
            &eig.eigenvectors,
            beta,
            cutoff_tol(spectral),
        );
        return Ok(ModelStatistics {
            dim,
            factor: Factor::Explicit(l),
        });
    }
    let eig = SymmetricEigen::new(&h)?;
    let (eigenvalues, eigenvectors) = (eig.eigenvalues, eig.eigenvectors);
    let lmax = eigenvalues.first().copied().unwrap_or(0.0).max(0.0);
    let cutoff = lmax * cutoff_tol(spectral);
    // Keep directions where H is invertible and J = H − βI positive.
    let cols: Vec<usize> = (0..eigenvalues.len())
        .filter(|&j| {
            let lam = eigenvalues[j];
            lam > cutoff && lam - beta > 0.0
        })
        .collect();
    let mut l = Matrix::zeros(dim, cols.len());
    for (c, &j) in cols.iter().enumerate() {
        let lam = eigenvalues[j];
        let scale = (lam - beta).sqrt() / lam;
        for i in 0..dim {
            l[(i, c)] = scale * eigenvectors[(i, j)];
        }
    }
    Ok(ModelStatistics {
        dim,
        factor: Factor::Explicit(l),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::StatisticsMethod;
    use crate::models::linreg::LinearRegressionSpec;
    use crate::models::logreg::LogisticRegressionSpec;
    use crate::models::maxent::MaxEntSpec;
    use blinkml_data::generators::{synthetic_linear, synthetic_logistic, yelp_like};
    use blinkml_data::SparseVec;
    use blinkml_optim::OptimOptions;
    use blinkml_prob::rng_from_seed;
    use blinkml_prob::MvnSampler;

    #[test]
    fn closed_form_and_observed_fisher_agree_for_linreg() {
        // Large n: the information equality makes OF ≈ CF — but only for
        // a *correctly specified* model. For linear regression the loss
        // ½(m−y)² encodes unit noise variance, so the generator must use
        // noise_std = 1.0 here; at other noise levels ObservedFisher
        // (correctly) estimates the robust sandwich covariance, which
        // differs from ClosedForm's J = H − βI by the factor σ².
        let (data, _) = synthetic_linear(20_000, 5, 1.0, 1);
        let spec = LinearRegressionSpec::new(1e-3);
        let model = spec.train(&data, None, &OptimOptions::default()).unwrap();
        let cf = closed_form(&spec, model.parameters(), &data).unwrap();
        let of = observed_fisher(&spec, model.parameters(), &data).unwrap();
        let c_cf = cf.covariance_dense();
        let c_of = of.covariance_dense();
        let denom = c_cf.max_abs().max(1e-12);
        assert!(
            c_cf.max_abs_diff(&c_of) / denom < 0.1,
            "relative diff {}",
            c_cf.max_abs_diff(&c_of) / denom
        );
    }

    #[test]
    fn inverse_gradients_matches_closed_form() {
        let (data, _) = synthetic_logistic(2_000, 4, 2.0, 2);
        let spec = LogisticRegressionSpec::new(1e-2);
        let model = spec.train(&data, None, &OptimOptions::default()).unwrap();
        let cf = closed_form(&spec, model.parameters(), &data).unwrap();
        let ig = inverse_gradients(&spec, model.parameters(), &data).unwrap();
        let c_cf = cf.covariance_dense();
        let c_ig = ig.covariance_dense();
        let denom = c_cf.max_abs().max(1e-12);
        assert!(
            c_cf.max_abs_diff(&c_ig) / denom < 1e-3,
            "relative diff {}",
            c_cf.max_abs_diff(&c_ig) / denom
        );
    }

    #[test]
    fn implicit_factor_matches_explicit_covariance() {
        // Force the implicit (D > n) path by taking a tiny sample of a
        // high-dimensional sparse problem, then compare the materialized
        // covariance against the explicit dense computation.
        let data = yelp_like(40, 120, 3); // D = 5·120 = 600 > n = 40
        let spec = MaxEntSpec::new(1e-3, 5);
        let model = spec.train(&data, None, &OptimOptions::default()).unwrap();
        let of = observed_fisher(&spec, model.parameters(), &data).unwrap();
        assert!(matches!(of.factor, Factor::Implicit { .. }));

        // Explicit reference: eigen of the dense J.
        let grads =
            <MaxEntSpec as ModelClassSpec<SparseVec>>::grads(&spec, model.parameters(), &data);
        let mut j = grads.second_moment();
        j.symmetrize();
        let eig = SymmetricEigen::new(&j).unwrap();
        let l = explicit_factor_from_j(&eig.eigenvalues, &eig.eigenvectors, 1e-3, EIGEN_TOLERANCE);
        let reference = blas::gemm_nt(&l, &l).unwrap();
        let implicit = of.covariance_dense();
        let denom = reference.max_abs().max(1e-12);
        assert!(
            reference.max_abs_diff(&implicit) / denom < 1e-6,
            "relative diff {}",
            reference.max_abs_diff(&implicit) / denom
        );
    }

    #[test]
    fn sampler_empirical_covariance_matches_factor() {
        let (data, _) = synthetic_linear(5_000, 3, 0.5, 4);
        let spec = LinearRegressionSpec::new(1e-3);
        let model = spec.train(&data, None, &OptimOptions::default()).unwrap();
        let stats = observed_fisher(&spec, model.parameters(), &data).unwrap();
        let expected = stats.covariance_dense();

        let mut sampler = MvnSampler::new(&stats);
        let mut rng = rng_from_seed(7);
        let draws = 40_000;
        let dim = stats.dim();
        let mut emp = Matrix::zeros(dim, dim);
        for _ in 0..draws {
            let x = sampler.sample_centered(&mut rng);
            blas::ger(1.0 / draws as f64, &x, &x, &mut emp);
        }
        let denom = expected.max_abs().max(1e-12);
        assert!(
            emp.max_abs_diff(&expected) / denom < 0.05,
            "relative diff {}",
            emp.max_abs_diff(&expected) / denom
        );
    }

    #[test]
    fn marginal_variances_match_covariance_diagonal() {
        let (data, _) = synthetic_logistic(3_000, 4, 2.0, 5);
        let spec = LogisticRegressionSpec::new(1e-3);
        let model = spec.train(&data, None, &OptimOptions::default()).unwrap();
        for method in [
            StatisticsMethod::ObservedFisher,
            StatisticsMethod::ClosedForm,
            StatisticsMethod::InverseGradients,
        ] {
            let stats = compute_statistics(method, &spec, model.parameters(), &data).unwrap();
            let mv = stats.marginal_variances();
            let cov = stats.covariance_dense();
            for i in 0..4 {
                assert!(
                    (mv[i] - cov[(i, i)]).abs() < 1e-12 * (1.0 + cov[(i, i)].abs()),
                    "{method:?} diag {i}"
                );
            }
        }
    }

    #[test]
    fn maxent_rejects_closed_form() {
        let data = yelp_like(50, 120, 6);
        let spec = MaxEntSpec::new(1e-3, 5);
        let model = spec.train(&data, None, &OptimOptions::default()).unwrap();
        let err = closed_form(&spec, model.parameters(), &data).unwrap_err();
        assert!(matches!(err, CoreError::UnsupportedStatistics { .. }));
    }

    #[test]
    fn covariance_shrinks_with_sample_size() {
        // The unscaled H⁻¹JH⁻¹ is O(1); the sampling covariance gets its
        // 1/n − 1/N factor later. But J itself concentrates: variance of
        // the *estimate* shrinks. Here we check the scaling hook: with
        // twice the data, the factored covariance should be similar in
        // magnitude (both estimate the same asymptotic quantity).
        let (data_small, _) = synthetic_linear(2_000, 3, 0.5, 8);
        let (data_big, _) = synthetic_linear(8_000, 3, 0.5, 8);
        let spec = LinearRegressionSpec::new(1e-3);
        let opts = OptimOptions::default();
        let m_small = spec.train(&data_small, None, &opts).unwrap();
        let m_big = spec.train(&data_big, None, &opts).unwrap();
        let c_small = observed_fisher(&spec, m_small.parameters(), &data_small)
            .unwrap()
            .covariance_dense();
        let c_big = observed_fisher(&spec, m_big.parameters(), &data_big)
            .unwrap()
            .covariance_dense();
        let denom = c_big.max_abs().max(1e-12);
        assert!(
            c_small.max_abs_diff(&c_big) / denom < 0.2,
            "asymptotic covariances should agree across n"
        );
    }
}
