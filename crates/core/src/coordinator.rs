//! The BlinkML Coordinator (paper §2.3).
//!
//! Workflow: draw the initial sample `D₀`, train `m₀`, estimate its
//! accuracy; if the contract is already met, return `m₀`. Otherwise ask
//! the Sample Size Estimator for the minimum `n` and train the final
//! model on a fresh size-`n` sample (warm-started from `θ₀`). At most
//! two approximate models are ever trained.

use crate::accuracy::ModelAccuracyEstimator;
use crate::config::{BlinkMlConfig, SamplingMode};
use crate::diff_engine::HoldoutScorer;
use crate::error::CoreError;
use crate::mcs::{ModelClassSpec, TrainedModel};
use crate::sample_size::SampleSizeEstimator;
use crate::serve::resilience::{relaxed_sample_size, CancelToken, DegradationRung, Pressure};
use crate::stats::{compute_statistics_cached, ModelStatistics};
use blinkml_data::{CaptureScratch, Dataset, DatasetMatrix, FeatureVec};
use blinkml_optim::{OptimError, StopCheck};
use blinkml_prob::split_seed;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Wall-clock time spent in each coordinator phase — the decomposition
/// reported in the paper's Figure 8a / Table 8.
#[derive(Debug, Clone, Default)]
pub struct TrainingPhaseTimes {
    /// Training the initial model `m₀` on `D₀`.
    pub initial_training: Duration,
    /// Computing the statistics (`H`, `J` factor).
    pub statistics: Duration,
    /// Accuracy estimation plus sample-size search.
    pub sample_size_search: Duration,
    /// Training the final model (zero when `m₀` was returned).
    pub final_training: Duration,
}

impl TrainingPhaseTimes {
    /// Total coordinator time.
    pub fn total(&self) -> Duration {
        self.initial_training + self.statistics + self.sample_size_search + self.final_training
    }
}

/// The result of a BlinkML training run.
#[derive(Debug, Clone)]
pub struct TrainingOutcome {
    /// The returned (approximate) model.
    pub model: TrainedModel,
    /// Sample size the returned model was trained on.
    pub sample_size: usize,
    /// Size `N` of the sampling pool.
    pub full_data_size: usize,
    /// Accuracy estimate `ε₀` of the initial model (always computed).
    pub initial_epsilon: f64,
    /// Estimated `ε` for the returned model: `ε₀` when the initial model
    /// was returned, the contract `ε` otherwise (or a fresh estimate
    /// when `estimate_final_accuracy` is set).
    pub estimated_epsilon: f64,
    /// Whether the initial model already satisfied the contract.
    pub used_initial_model: bool,
    /// Phase timing breakdown.
    pub phases: TrainingPhaseTimes,
    /// Binary-search probes used by the sample-size estimator.
    pub search_probes: usize,
}

impl TrainingOutcome {
    /// Generalization-error bound for the *full* model from Lemma 1:
    /// given the approximate model's holdout error `ε_g`, the full
    /// model's error is at most `ε_g + ε − ε_g·ε` with probability
    /// `1 − δ`.
    pub fn full_model_error_bound(&self, approx_generalization_error: f64) -> f64 {
        let eg = approx_generalization_error;
        let e = self.estimated_epsilon;
        eg + e - eg * e
    }
}

/// The BlinkML coordinator.
#[derive(Debug, Clone)]
pub struct Coordinator {
    config: BlinkMlConfig,
}

impl Coordinator {
    /// Coordinator with the given configuration.
    pub fn new(config: BlinkMlConfig) -> Self {
        Coordinator { config }
    }

    /// Borrow the configuration.
    pub fn config(&self) -> &BlinkMlConfig {
        &self.config
    }

    /// Train with an internal holdout split: `holdout_size` examples are
    /// carved out of `data` and never used for training.
    pub fn train<F: FeatureVec, S: ModelClassSpec<F> + ?Sized>(
        &self,
        spec: &S,
        data: &Dataset<F>,
        seed: u64,
    ) -> Result<TrainingOutcome, CoreError> {
        self.config.validate()?;
        let holdout_size = self.config.holdout_size.min(data.len() / 5);
        if holdout_size == 0 {
            return Err(CoreError::InvalidData(format!(
                "dataset of {} examples is too small to carve a holdout",
                data.len()
            )));
        }
        let split = data.split(holdout_size, 0, split_seed(seed, 100));
        self.train_with_holdout(spec, &split.train, &split.holdout, seed)
    }

    /// Train against an explicit training pool and holdout set.
    ///
    /// In the default [`SamplingMode::ZeroCopy`] mode, batched model
    /// classes get their samples as index views gathered from **one**
    /// pool-resident design matrix built here — drawing the initial and
    /// final samples clones no example and rebuilds no matrix, and
    /// outcomes are bit-identical to [`SamplingMode::Materialize`] by
    /// the gathered-view exactness contract.
    pub fn train_with_holdout<F: FeatureVec, S: ModelClassSpec<F> + ?Sized>(
        &self,
        spec: &S,
        train: &Dataset<F>,
        holdout: &Dataset<F>,
        seed: u64,
    ) -> Result<TrainingOutcome, CoreError> {
        self.config.validate()?;
        // Install the thread budget for every parallel kernel downstream.
        // Deterministic chunking means this never changes results.
        self.config.exec.apply();
        let pool = build_pool(spec, train, &self.config);
        let mut cap_scratch = CaptureScratch::new();
        run_train(
            &self.config,
            spec,
            train,
            holdout,
            pool.as_ref(),
            &mut cap_scratch,
            seed,
            None,
            false,
        )
        .map(|(outcome, _)| outcome)
    }

    /// The honest ε this coordinator's workflow assigns to a model
    /// trained on exactly `n` examples — one point on the sample-size
    /// curve, computed cold: pilot on `n₀` (sub-seed 0), statistics,
    /// then the curve quantile with the sample-size search's own
    /// sub-seed (2) and draw pools.
    ///
    /// This is the oracle for the serving layer's
    /// [`RelaxedFinal`](crate::serve::resilience::DegradationRung::RelaxedFinal)
    /// degradation rung: a degraded response's achieved ε is bit-equal
    /// to `curve_epsilon_at` for the same `(spec, data, seed, n)`.
    pub fn curve_epsilon_at<F: FeatureVec, S: ModelClassSpec<F> + ?Sized>(
        &self,
        spec: &S,
        train: &Dataset<F>,
        holdout: &Dataset<F>,
        seed: u64,
        n: usize,
    ) -> Result<f64, CoreError> {
        self.config.validate()?;
        self.config.exec.apply();
        let full_n = train.len();
        let n0 = self.config.initial_sample_size.min(full_n);
        if n < n0 || n > full_n {
            return Err(CoreError::InvalidConfig(format!(
                "curve point n = {n} outside [n₀ = {n0}, N = {full_n}]"
            )));
        }
        if n0 == full_n {
            return Ok(0.0);
        }
        let pool = build_pool(spec, train, &self.config);
        let mut cap_scratch = CaptureScratch::new();
        let fit = fit_sample(
            &self.config,
            spec,
            train,
            pool.as_ref(),
            &mut cap_scratch,
            n0,
            split_seed(seed, 0),
            None,
            true,
            None,
        )?;
        let stats = fit.stats.as_ref().expect("statistics requested");
        let scorer = HoldoutScorer::new(spec, holdout, fit.model.parameters());
        let sse = SampleSizeEstimator::new(self.config.num_param_samples);
        Ok(sse.epsilon_at_scored(
            &scorer,
            stats,
            n0,
            n,
            full_n,
            self.config.delta,
            split_seed(seed, 2),
        ))
    }
}

/// The pool-resident design matrix for the zero-copy sampling mode:
/// built once per run (or once per [`crate::session::Session`]) and
/// gathered into index views for every sample. `None` when the spec has
/// no batched engine or materialized sampling was requested.
pub(crate) fn build_pool<'a, F: FeatureVec, S: ModelClassSpec<F> + ?Sized>(
    spec: &S,
    train: &'a Dataset<F>,
    config: &BlinkMlConfig,
) -> Option<DatasetMatrix<'a>> {
    (config.sampling == SamplingMode::ZeroCopy && spec.batched_training() && !train.is_empty())
        .then(|| DatasetMatrix::from_dataset(train))
}

/// The ε-independent artifacts of the pilot phase — the initial model
/// and its statistics — cached by [`crate::session::Session`] across
/// repeated `train()` calls with different contracts, and by the
/// serving layer's keyed LRU ([`crate::serve`]) across tenants.
#[derive(Debug, Clone)]
pub(crate) struct PilotState {
    /// The initial model `m₀` trained on `n₀` examples.
    pub(crate) model: TrainedModel,
    /// Its statistics (`None` when `n₀ = N`: the run returns the exact
    /// model before any statistics are computed).
    pub(crate) stats: Option<ModelStatistics>,
    /// The pilot sample size the artifacts were computed at.
    pub(crate) n0: usize,
}

/// The outcome of the coordinator's decision stage (the ε-dependent part
/// of the workflow): given a pilot's holdout scores and statistics,
/// either the initial model already satisfies the contract, or the
/// minimum sample size for the final training has been determined. The
/// sweep engine runs this stage per grid point against its batched
/// scorers; [`run_train`] runs it once.
#[derive(Debug, Clone, Copy)]
pub(crate) enum Decision {
    /// `ε₀ ≤ ε`: return the initial model.
    InitialSatisfies {
        /// Accuracy estimate of the initial model.
        eps0: f64,
    },
    /// The contract needs a final model on `n` examples.
    Train {
        /// Accuracy estimate of the initial model.
        eps0: f64,
        /// Minimum sample size from the estimator's binary search.
        n: usize,
        /// Binary-search probes used.
        probes: usize,
    },
}

/// Degradation-aware run parameters for [`run_train_controlled`]: an
/// optional cancellation token (deadline pressure), the shed lane
/// (pilot-only), and the relaxed-final sizing knob. The
/// [`RunControl::unbounded`] default takes exactly the historical
/// [`run_train`] path — no token, no extra branches on the numeric
/// path.
#[derive(Debug, Clone)]
pub(crate) struct RunControl {
    /// Cooperative cancellation token; `None` never degrades.
    pub(crate) cancel: Option<Arc<CancelToken>>,
    /// Shed lane: skip the sample-size search and final training, and
    /// return the pilot with its honest ε₀ whenever it does not already
    /// satisfy the contract.
    pub(crate) pilot_only: bool,
    /// Fraction of the `n₀ → n` span the relaxed final model trains on
    /// under [`Pressure::Relax`] (see
    /// [`relaxed_sample_size`]).
    pub(crate) relax_fraction: f64,
    /// Optional warm start θ for the pilot train (streaming retrain of
    /// a drifted pilot under `WarmStartPolicy::PathFollow`). On a
    /// line-search failure or non-finite objective the pilot retries
    /// cold, exactly like the sweep engine's path-follow rule; `None`
    /// (the default) is the historical cold start and preserves
    /// bit-equality with a never-streamed run.
    pub(crate) pilot_warm_start: Option<Vec<f64>>,
}

impl RunControl {
    /// No deadline, no shedding: the historical full workflow.
    pub(crate) fn unbounded() -> Self {
        RunControl {
            cancel: None,
            pilot_only: false,
            relax_fraction: 0.25,
            pilot_warm_start: None,
        }
    }
}

/// Outcome of the degradation-aware decision stage.
pub(crate) enum ControlledDecision {
    /// `ε₀ ≤ ε`: return the initial model (a full-rung outcome).
    InitialSatisfies {
        /// Accuracy estimate of the initial model.
        eps0: f64,
    },
    /// Deadline pressure or the shed lane: return the pilot with its
    /// honest ε₀ instead of searching / training further.
    DegradeToPilot {
        /// Accuracy estimate of the initial model.
        eps0: f64,
        /// Binary-search probes spent before the search was abandoned.
        probes: usize,
    },
    /// The contract needs a final model on `n` examples.
    Train {
        /// Accuracy estimate of the initial model.
        eps0: f64,
        /// Minimum sample size from the estimator's binary search.
        n: usize,
        /// Binary-search probes used.
        probes: usize,
    },
}

/// Decision stage shared by [`run_train`] and the sweep engine: estimate
/// the pilot's accuracy `ε₀` (sub-seed 1) and, when the contract is not
/// yet met, binary-search the minimum sample size (sub-seed 2) — both
/// against one [`HoldoutScorer`], so the θ₀ score matrix is built once.
pub(crate) fn decide<F: FeatureVec, S: ModelClassSpec<F> + ?Sized>(
    config: &BlinkMlConfig,
    scorer: &HoldoutScorer<'_, F, S>,
    stats: &crate::stats::ModelStatistics,
    n0: usize,
    full_n: usize,
    seed: u64,
) -> Decision {
    match decide_controlled(
        config,
        scorer,
        stats,
        n0,
        full_n,
        seed,
        &RunControl::unbounded(),
    ) {
        ControlledDecision::InitialSatisfies { eps0 } => Decision::InitialSatisfies { eps0 },
        ControlledDecision::Train { eps0, n, probes } => Decision::Train { eps0, n, probes },
        ControlledDecision::DegradeToPilot { .. } => {
            unreachable!("an unbounded control never degrades")
        }
    }
}

/// [`decide`] with deadline / shed awareness: the ε₀ estimate always
/// completes (it is what makes the pilot rung *honest*), then the shed
/// lane or an expired token short-circuits to the pilot, and the
/// binary search itself polls the token before every probe.
pub(crate) fn decide_controlled<F: FeatureVec, S: ModelClassSpec<F> + ?Sized>(
    config: &BlinkMlConfig,
    scorer: &HoldoutScorer<'_, F, S>,
    stats: &crate::stats::ModelStatistics,
    n0: usize,
    full_n: usize,
    seed: u64,
    control: &RunControl,
) -> ControlledDecision {
    let accuracy = ModelAccuracyEstimator::new(config.num_param_samples);
    let eps0 =
        accuracy.estimate_scored(scorer, stats, n0, full_n, config.delta, split_seed(seed, 1));
    if eps0 <= config.epsilon {
        return ControlledDecision::InitialSatisfies { eps0 };
    }
    let expired = || control.cancel.as_deref().is_some_and(CancelToken::expired);
    if control.pilot_only || expired() {
        return ControlledDecision::DegradeToPilot { eps0, probes: 0 };
    }
    let sse = SampleSizeEstimator::new(config.num_param_samples);
    let est = match &control.cancel {
        Some(token) => {
            let stop = || token.expired();
            sse.estimate_scored_stoppable(
                scorer,
                stats,
                n0,
                full_n,
                config.epsilon,
                config.delta,
                split_seed(seed, 2),
                Some(&stop),
            )
        }
        None => Some(sse.estimate_scored(
            scorer,
            stats,
            n0,
            full_n,
            config.epsilon,
            config.delta,
            split_seed(seed, 2),
        )),
    };
    match est {
        Some(est) => ControlledDecision::Train {
            eps0,
            n: est.n,
            probes: est.probes,
        },
        None => ControlledDecision::DegradeToPilot { eps0, probes: 0 },
    }
}

/// Closing accuracy estimate of a **final** model (the
/// `estimate_final_accuracy` option): a fresh holdout scorer for `θ_n`
/// and an accuracy estimate at sub-seed 4. Shared by [`run_train`] and
/// the sweep engine so both compute the exact same `ε̂`.
#[allow(clippy::too_many_arguments)]
pub(crate) fn final_accuracy_scored<F: FeatureVec, S: ModelClassSpec<F> + ?Sized>(
    config: &BlinkMlConfig,
    spec: &S,
    holdout: &Dataset<F>,
    stats_n: &crate::stats::ModelStatistics,
    theta_n: &[f64],
    n: usize,
    full_n: usize,
    seed: u64,
) -> f64 {
    let scorer_n = HoldoutScorer::new(spec, holdout, theta_n);
    let accuracy = ModelAccuracyEstimator::new(config.num_param_samples);
    accuracy.estimate_scored(
        &scorer_n,
        stats_n,
        n,
        full_n,
        config.delta,
        split_seed(seed, 4),
    )
}

/// One sample fit: draw the deterministic sample for `(n, sample_seed)`,
/// train on it (warm-started when given), and optionally compute its
/// statistics — reusing one design-matrix view for both. With a pool
/// matrix the sample is a gathered index view (zero example clones);
/// without one it is materialized exactly as the historical path did.
struct SampleFit {
    model: TrainedModel,
    stats: Option<ModelStatistics>,
    train_time: Duration,
    stats_time: Duration,
}

#[allow(clippy::too_many_arguments)]
fn fit_sample<F: FeatureVec, S: ModelClassSpec<F> + ?Sized>(
    config: &BlinkMlConfig,
    spec: &S,
    train: &Dataset<F>,
    pool: Option<&DatasetMatrix<'_>>,
    cap_scratch: &mut CaptureScratch,
    n: usize,
    sample_seed: u64,
    warm_start: Option<&[f64]>,
    with_stats: bool,
    cancel: Option<&CancelToken>,
) -> Result<SampleFit, CoreError> {
    // Checkpoint between the train and statistics phases: an expired
    // token stops before the statistics pass starts.
    let stats_checkpoint = || -> Result<(), CoreError> {
        match cancel {
            Some(token) if with_stats && token.expired() => Err(CoreError::Cancelled),
            _ => Ok(()),
        }
    };
    let t = Instant::now();
    match pool {
        Some(pm) => {
            // Zero-copy path: the sample is an index list. Training and
            // statistics share one capture — a gathered view straight
            // into the pool matrix while the sample is cache-resident,
            // or a packed contiguous block above the pack threshold
            // (one bulk copy instead of latency-bound random gathers on
            // every optimizer probe; never per-example clones). Both
            // forms are bit-identical.
            let sample = train.sample_view(n, sample_seed);
            let capture = pm.capture_sample_with(sample.indices(), cap_scratch);
            let view = capture.view();
            let model = spec.train_with_matrix(train, Some(&view), warm_start, &config.optim)?;
            let train_time = t.elapsed();
            stats_checkpoint()?;
            let t = Instant::now();
            let stats = with_stats
                .then(|| {
                    compute_statistics_cached(
                        config.statistics_method,
                        config.spectral,
                        spec,
                        model.parameters(),
                        train,
                        Some(&view),
                    )
                })
                .transpose()?;
            let stats_time = t.elapsed();
            // Give a packed capture's buffers back so the next capture
            // (the final sample, or the next session query) rewrites
            // warm pages instead of faulting in fresh ones.
            capture.recycle(cap_scratch);
            Ok(SampleFit {
                model,
                stats,
                train_time,
                stats_time,
            })
        }
        None => {
            // Materialized path (scalar-path specs, or
            // `SamplingMode::Materialize`): clone the sample, build its
            // matrix once, share it between training and statistics.
            let sample = train.sample(n, sample_seed);
            let xm = spec
                .batched_training()
                .then(|| DatasetMatrix::from_dataset(&sample));
            let xmv = xm.as_ref().map(|m| m.view());
            let model = spec.train_with_matrix(&sample, xmv.as_ref(), warm_start, &config.optim)?;
            let train_time = t.elapsed();
            stats_checkpoint()?;
            let t = Instant::now();
            let stats = with_stats
                .then(|| {
                    compute_statistics_cached(
                        config.statistics_method,
                        config.spectral,
                        spec,
                        model.parameters(),
                        &sample,
                        xmv.as_ref(),
                    )
                })
                .transpose()?;
            Ok(SampleFit {
                model,
                stats,
                train_time,
                stats_time: t.elapsed(),
            })
        }
    }
}

/// The coordinator workflow (paper §2.3), shared by
/// [`Coordinator::train_with_holdout`] and
/// [`crate::session::Session::train`]: pilot (train `m₀`, statistics),
/// accuracy estimate, sample-size search, final training — with the
/// holdout `DiffEngine` base scores built **once** and shared between
/// the ε₀ estimate and the search, and samples served from the pool
/// matrix when one is given.
///
/// `pilot` short-circuits the pilot phase with cached artifacts (the
/// Session amortization); `want_pilot` asks for the artifacts back so
/// the caller can cache them.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_train<F: FeatureVec, S: ModelClassSpec<F> + ?Sized>(
    config: &BlinkMlConfig,
    spec: &S,
    train: &Dataset<F>,
    holdout: &Dataset<F>,
    pool: Option<&DatasetMatrix<'_>>,
    cap_scratch: &mut CaptureScratch,
    seed: u64,
    pilot: Option<&PilotState>,
    want_pilot: bool,
) -> Result<(TrainingOutcome, Option<PilotState>), CoreError> {
    run_train_controlled(
        config,
        spec,
        train,
        holdout,
        pool,
        cap_scratch,
        seed,
        pilot,
        want_pilot,
        &RunControl::unbounded(),
    )
    .map(|(outcome, cached, _rung)| (outcome, cached))
}

/// The pilot-rung outcome of the degradation ladder: return `m₀` with
/// its honest ε₀ as both the initial and the achieved guarantee.
fn pilot_rung_outcome(
    m0: TrainedModel,
    n0: usize,
    full_n: usize,
    eps0: f64,
    phases: TrainingPhaseTimes,
    probes: usize,
) -> TrainingOutcome {
    TrainingOutcome {
        sample_size: n0,
        full_data_size: full_n,
        initial_epsilon: eps0,
        estimated_epsilon: eps0,
        used_initial_model: true,
        phases,
        search_probes: probes,
        model: m0,
    }
}

/// [`run_train`] with deadline / degradation control (the serving
/// layer's entry point). Returns which [`DegradationRung`] produced the
/// outcome. The ladder:
///
/// 1. **Full** — no pressure: the historical workflow, bit-identical
///    to [`run_train`].
/// 2. **RelaxedFinal** — [`Pressure::Relax`] at the final-train
///    boundary: the final model trains on
///    [`relaxed_sample_size`] examples and the response reports the
///    honest curve ε for that size (same sub-seed and draw pools as
///    the search — bit-equal to a cold replay).
/// 3. **Pilot** — the deadline expired after ε₀ was computed (during
///    the search or final training), or the query was shed into the
///    pilot-only lane: `m₀` with its honest ε₀.
/// 4. **Fail-fast** — the deadline expired before any guarantee
///    existed (before/during the pilot or statistics phases):
///    [`CoreError::Cancelled`].
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_train_controlled<F: FeatureVec, S: ModelClassSpec<F> + ?Sized>(
    config: &BlinkMlConfig,
    spec: &S,
    train: &Dataset<F>,
    holdout: &Dataset<F>,
    pool: Option<&DatasetMatrix<'_>>,
    cap_scratch: &mut CaptureScratch,
    seed: u64,
    pilot: Option<&PilotState>,
    want_pilot: bool,
    control: &RunControl,
) -> Result<(TrainingOutcome, Option<PilotState>, DegradationRung), CoreError> {
    if train.is_empty() {
        return Err(CoreError::InvalidData("empty training pool".into()));
    }
    if holdout.is_empty() {
        return Err(CoreError::InvalidData("empty holdout set".into()));
    }
    let full_n = train.len();
    let n0 = config.initial_sample_size.min(full_n);
    let mut phases = TrainingPhaseTimes::default();

    // Install the optimizer's per-iteration stop probe when a token is
    // present. The unloaded path (`cancel: None`) borrows the caller's
    // config untouched — no clone, no probe, no new branches.
    let controlled_config;
    let config = match &control.cancel {
        Some(token) => {
            let probe = token.clone();
            let mut c = config.clone();
            c.optim.stop_check = Some(StopCheck::new(move || probe.expired()));
            controlled_config = c;
            &controlled_config
        }
        None => config,
    };
    let cancel = control.cancel.as_deref();
    let expired = || cancel.is_some_and(CancelToken::expired);

    // Checkpoint 0: deadline already gone before any work.
    if expired() {
        return Err(CoreError::Cancelled);
    }

    // Phases 1 + 2: the pilot — initial model on D₀ plus its statistics
    // (skipped when n₀ = N), one shared sample view for both. A cached
    // pilot (Session) skips the work entirely; the artifacts are
    // ε-independent, so reuse is exact. Cancellation in here (pilot
    // train, statistics) is a fail-fast: no guarantee exists yet.
    let (m0, stats0) = match pilot {
        Some(p) => {
            debug_assert_eq!(p.n0, n0, "cached pilot has a different n0");
            (p.model.clone(), p.stats.clone())
        }
        None => {
            let warm = control.pilot_warm_start.as_deref();
            let mut attempt = fit_sample(
                config,
                spec,
                train,
                pool,
                cap_scratch,
                n0,
                split_seed(seed, 0),
                warm,
                n0 < full_n,
                cancel,
            );
            // Warm-started retrains follow the sweep engine's
            // path-follow rule: a diverged line search (or non-finite
            // objective) from a drifted θ falls back to the cold start
            // instead of surfacing the failure.
            if warm.is_some()
                && matches!(
                    attempt,
                    Err(CoreError::Optimization(
                        OptimError::LineSearchFailed { .. } | OptimError::NonFiniteObjective
                    ))
                )
            {
                attempt = fit_sample(
                    config,
                    spec,
                    train,
                    pool,
                    cap_scratch,
                    n0,
                    split_seed(seed, 0),
                    None,
                    n0 < full_n,
                    cancel,
                );
            }
            let fit = attempt.map_err(|e| {
                if e.is_cancellation() {
                    CoreError::Cancelled
                } else {
                    e
                }
            })?;
            phases.initial_training = fit.train_time;
            phases.statistics = fit.stats_time;
            (fit.model, fit.stats)
        }
    };
    let pilot_state = |model: &TrainedModel, stats: &Option<ModelStatistics>| {
        want_pilot.then(|| PilotState {
            model: model.clone(),
            stats: stats.clone(),
            n0,
        })
    };

    if n0 == full_n {
        // The "initial sample" is the whole dataset: exact model.
        let cached = pilot_state(&m0, &stats0);
        return Ok((
            TrainingOutcome {
                sample_size: n0,
                full_data_size: full_n,
                initial_epsilon: 0.0,
                estimated_epsilon: 0.0,
                used_initial_model: true,
                phases,
                search_probes: 0,
                model: m0,
            },
            cached,
            DegradationRung::Full,
        ));
    }
    let stats = stats0.as_ref().expect("statistics computed when n0 < N");

    // Checkpoint: statistics → search boundary. Still no honest ε₀, so
    // expiry here is a fail-fast too.
    if expired() {
        return Err(CoreError::Cancelled);
    }

    // Phases 3a + 3b — the decision stage: accuracy of m₀, then (when
    // needed) the minimum sample size, both against one holdout scorer
    // so the θ₀ score matrix is built once. From here on the pilot rung
    // is reachable: ε₀ is an honest guarantee for m₀.
    let t = Instant::now();
    let scorer = HoldoutScorer::new(spec, holdout, m0.parameters());
    let decision = decide_controlled(config, &scorer, stats, n0, full_n, seed, control);
    phases.sample_size_search = t.elapsed();
    let (eps0, est_n, probes) = match decision {
        ControlledDecision::InitialSatisfies { eps0 } => {
            let cached = pilot_state(&m0, &stats0);
            return Ok((
                TrainingOutcome {
                    sample_size: n0,
                    full_data_size: full_n,
                    initial_epsilon: eps0,
                    estimated_epsilon: eps0,
                    used_initial_model: true,
                    phases,
                    search_probes: 0,
                    model: m0,
                },
                cached,
                DegradationRung::Full,
            ));
        }
        ControlledDecision::DegradeToPilot { eps0, probes } => {
            let cached = pilot_state(&m0, &stats0);
            return Ok((
                pilot_rung_outcome(m0, n0, full_n, eps0, phases, probes),
                cached,
                DegradationRung::Pilot,
            ));
        }
        ControlledDecision::Train { eps0, n, probes } => (eps0, n, probes),
    };

    // Checkpoint: the final-train boundary — the last point where the
    // ladder can still buy latency. Relax pressure trains a cheaper
    // final model with an honest curve ε; expiry falls to the pilot.
    let mut final_n = est_n;
    let mut rung = DegradationRung::Full;
    let mut relaxed_eps = None;
    if let Some(token) = cancel {
        match token.pressure() {
            Pressure::Expired => {
                let cached = pilot_state(&m0, &stats0);
                return Ok((
                    pilot_rung_outcome(m0, n0, full_n, eps0, phases, probes),
                    cached,
                    DegradationRung::Pilot,
                ));
            }
            Pressure::Relax => {
                let n_relaxed = relaxed_sample_size(n0, est_n, control.relax_fraction);
                if n_relaxed < est_n {
                    // The achieved guarantee for the relaxed size, from
                    // the search's own sub-seed and draw pools — the
                    // exact value a cold coordinator computes for this
                    // curve point.
                    let sse = SampleSizeEstimator::new(config.num_param_samples);
                    relaxed_eps = Some(sse.epsilon_at_scored(
                        &scorer,
                        stats,
                        n0,
                        n_relaxed,
                        full_n,
                        config.delta,
                        split_seed(seed, 2),
                    ));
                    final_n = n_relaxed;
                    rung = DegradationRung::RelaxedFinal;
                }
            }
            Pressure::None => {}
        }
    }

    // Phase 4: final model, warm-started from θ₀, gathered from the
    // same pool matrix; the optional closing statistics pass reuses the
    // final sample's view (full rung only — under pressure the extra
    // pass is exactly what the ladder is shedding).
    let want_final_stats =
        config.estimate_final_accuracy && rung == DegradationRung::Full && final_n < full_n;
    let fit = match fit_sample(
        config,
        spec,
        train,
        pool,
        cap_scratch,
        final_n,
        split_seed(seed, 3),
        Some(m0.parameters()),
        want_final_stats,
        cancel,
    ) {
        Ok(fit) => fit,
        Err(e) if e.is_cancellation() => {
            // Mid-final-train expiry: the pilot rung still holds its
            // honest ε₀.
            let cached = pilot_state(&m0, &stats0);
            return Ok((
                pilot_rung_outcome(m0, n0, full_n, eps0, phases, probes),
                cached,
                DegradationRung::Pilot,
            ));
        }
        Err(e) => return Err(e),
    };
    phases.final_training = fit.train_time;

    let estimated_epsilon = if let Some(eps) = relaxed_eps {
        eps
    } else if want_final_stats {
        let t = Instant::now();
        let stats_n = fit.stats.as_ref().expect("final statistics requested");
        let eps = final_accuracy_scored(
            config,
            spec,
            holdout,
            stats_n,
            fit.model.parameters(),
            est_n,
            full_n,
            seed,
        );
        phases.statistics += fit.stats_time + t.elapsed();
        eps
    } else if final_n >= full_n {
        0.0
    } else {
        config.epsilon
    };

    let cached = pilot_state(&m0, &stats0);
    Ok((
        TrainingOutcome {
            sample_size: final_n,
            full_data_size: full_n,
            initial_epsilon: eps0,
            estimated_epsilon,
            used_initial_model: false,
            phases,
            search_probes: probes,
            model: fit.model,
        },
        cached,
        rung,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::StatisticsMethod;
    use crate::models::linreg::LinearRegressionSpec;
    use crate::models::logreg::LogisticRegressionSpec;
    use blinkml_data::generators::{synthetic_linear, synthetic_logistic};
    use blinkml_optim::OptimOptions;

    fn config(epsilon: f64, n0: usize) -> BlinkMlConfig {
        BlinkMlConfig {
            epsilon,
            delta: 0.05,
            initial_sample_size: n0,
            holdout_size: 800,
            num_param_samples: 64,
            statistics_method: StatisticsMethod::ObservedFisher,
            spectral: Default::default(),
            sampling: Default::default(),
            optim: OptimOptions::default(),
            estimate_final_accuracy: false,
            exec: Default::default(),
        }
    }

    #[test]
    fn loose_contract_returns_initial_model() {
        let (data, _) = synthetic_logistic(20_000, 5, 2.0, 1);
        let spec = LogisticRegressionSpec::new(1e-3);
        let out = Coordinator::new(config(0.5, 500))
            .train(&spec, &data, 42)
            .unwrap();
        assert!(out.used_initial_model);
        assert_eq!(out.sample_size, 500);
        assert!(out.estimated_epsilon <= 0.5);
        assert_eq!(out.phases.final_training, Duration::ZERO);
    }

    #[test]
    fn tight_contract_trains_second_model() {
        let (data, _) = synthetic_logistic(30_000, 5, 2.0, 2);
        let spec = LogisticRegressionSpec::new(1e-3);
        let out = Coordinator::new(config(0.01, 300))
            .train(&spec, &data, 43)
            .unwrap();
        assert!(!out.used_initial_model);
        assert!(out.sample_size > 300, "n = {}", out.sample_size);
        assert!(out.search_probes > 0);
        assert!(out.phases.final_training > Duration::ZERO);
        assert!(out.initial_epsilon > 0.01);
    }

    #[test]
    fn returned_model_matches_trained_full_model_within_epsilon() {
        let (data, _) = synthetic_linear(15_000, 4, 0.5, 3);
        let split = data.split(1_000, 0, 4);
        let spec = LinearRegressionSpec::new(1e-3);
        let epsilon = 0.05;
        let out = Coordinator::new(config(epsilon, 400))
            .train_with_holdout(&spec, &split.train, &split.holdout, 44)
            .unwrap();
        let full = spec
            .train(&split.train, None, &OptimOptions::default())
            .unwrap();
        let v = spec.diff(out.model.parameters(), full.parameters(), &split.holdout);
        assert!(v <= epsilon * 1.5, "realized difference {v}");
    }

    #[test]
    fn n0_larger_than_dataset_trains_exact_model() {
        let (data, _) = synthetic_linear(1_500, 3, 0.3, 5);
        let spec = LinearRegressionSpec::new(1e-3);
        let out = Coordinator::new(config(0.05, 10_000))
            .train(&spec, &data, 45)
            .unwrap();
        assert!(out.used_initial_model);
        assert_eq!(out.sample_size, out.full_data_size);
        assert_eq!(out.estimated_epsilon, 0.0);
    }

    #[test]
    fn rejects_empty_and_tiny_inputs() {
        let spec = LinearRegressionSpec::new(1e-3);
        let empty = Dataset::<blinkml_data::DenseVec>::new("empty", 2, vec![]);
        assert!(Coordinator::new(config(0.05, 100))
            .train(&spec, &empty, 1)
            .is_err());
    }

    #[test]
    fn lemma1_bound_formula() {
        let out = TrainingOutcome {
            model: TrainedModel::new(vec![0.0], 10, 0, true, 0.0),
            sample_size: 10,
            full_data_size: 100,
            initial_epsilon: 0.1,
            estimated_epsilon: 0.1,
            used_initial_model: true,
            phases: TrainingPhaseTimes::default(),
            search_probes: 0,
        };
        // ε_g + ε − ε_g·ε with ε_g = 0.2, ε = 0.1.
        let bound = out.full_model_error_bound(0.2);
        assert!((bound - 0.28).abs() < 1e-12);
    }

    #[test]
    fn deterministic_given_seed() {
        let (data, _) = synthetic_logistic(10_000, 4, 2.0, 6);
        let spec = LogisticRegressionSpec::new(1e-3);
        let c = Coordinator::new(config(0.05, 300));
        let a = c.train(&spec, &data, 7).unwrap();
        let b = c.train(&spec, &data, 7).unwrap();
        assert_eq!(a.sample_size, b.sample_size);
        assert_eq!(a.model.parameters(), b.model.parameters());
    }

    #[test]
    fn outputs_identical_across_thread_budgets() {
        // The execution layer's determinism contract, end to end: a tight
        // contract (forcing the sample-size search and second training)
        // must produce bit-identical results sequentially and with a
        // multi-thread budget.
        use crate::config::ExecConfig;
        let (data, _) = synthetic_logistic(12_000, 4, 2.0, 8);
        let spec = LogisticRegressionSpec::new(1e-3);
        let mut cfg = config(0.02, 300);
        cfg.exec = ExecConfig::sequential();
        let a = Coordinator::new(cfg.clone())
            .train(&spec, &data, 9)
            .unwrap();
        cfg.exec = ExecConfig {
            max_threads: Some(4),
        };
        let b = Coordinator::new(cfg).train(&spec, &data, 9).unwrap();
        assert_eq!(a.sample_size, b.sample_size);
        assert_eq!(a.initial_epsilon, b.initial_epsilon);
        assert_eq!(a.model.parameters(), b.model.parameters());
    }
}
