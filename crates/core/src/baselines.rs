//! Sample-size baselines from the paper's §5.4 (Figure 7 / Tables 6–7).
//!
//! * **FixedRatio** — always train on a fixed fraction of `N` (1% in the
//!   paper), blind to the model and the requested accuracy.
//! * **RelativeRatio** — train on `(1 − ε)·10%` of `N`: scales with the
//!   request but is still blind to the model.
//! * **IncEstimator** — train models of growing size (`base·k²` at the
//!   `k`-th iteration) until the accuracy estimator certifies the
//!   contract; meets the accuracy but trains many models.

use crate::accuracy::ModelAccuracyEstimator;
use crate::config::BlinkMlConfig;
use crate::error::CoreError;
use crate::mcs::{ModelClassSpec, TrainedModel};
use crate::stats::compute_statistics;
use blinkml_data::{Dataset, FeatureVec};
use blinkml_prob::split_seed;
use std::time::{Duration, Instant};

/// Result of running a baseline policy.
#[derive(Debug, Clone)]
pub struct BaselineOutcome {
    /// The trained model.
    pub model: TrainedModel,
    /// Sample size of the returned model.
    pub sample_size: usize,
    /// Total wall-clock time.
    pub elapsed: Duration,
    /// Number of models trained along the way (1 for the ratio
    /// policies; ≥ 1 for IncEstimator).
    pub models_trained: usize,
}

/// A policy that picks a sample size (possibly iteratively) and trains.
pub trait SampleSizePolicy {
    /// Policy name for reports.
    fn name(&self) -> &'static str;

    /// Run the policy against a training pool and holdout.
    fn run<F: FeatureVec, S: ModelClassSpec<F> + ?Sized>(
        &self,
        spec: &S,
        train: &Dataset<F>,
        holdout: &Dataset<F>,
        config: &BlinkMlConfig,
        seed: u64,
    ) -> Result<BaselineOutcome, CoreError>;
}

/// Train on a fixed fraction of the data (paper: 1%).
#[derive(Debug, Clone)]
pub struct FixedRatio {
    /// Fraction of `N` to train on.
    pub ratio: f64,
}

impl Default for FixedRatio {
    fn default() -> Self {
        FixedRatio { ratio: 0.01 }
    }
}

impl SampleSizePolicy for FixedRatio {
    fn name(&self) -> &'static str {
        "FixedRatio"
    }

    fn run<F: FeatureVec, S: ModelClassSpec<F> + ?Sized>(
        &self,
        spec: &S,
        train: &Dataset<F>,
        _holdout: &Dataset<F>,
        config: &BlinkMlConfig,
        seed: u64,
    ) -> Result<BaselineOutcome, CoreError> {
        let t = Instant::now();
        let n = ((train.len() as f64 * self.ratio) as usize).clamp(1, train.len());
        let sample = train.sample(n, split_seed(seed, 0));
        let model = spec.train(&sample, None, &config.optim)?;
        Ok(BaselineOutcome {
            sample_size: n,
            elapsed: t.elapsed(),
            models_trained: 1,
            model,
        })
    }
}

/// Train on `(1 − ε) · 10%` of the data.
#[derive(Debug, Clone, Default)]
pub struct RelativeRatio;

impl SampleSizePolicy for RelativeRatio {
    fn name(&self) -> &'static str {
        "RelativeRatio"
    }

    fn run<F: FeatureVec, S: ModelClassSpec<F> + ?Sized>(
        &self,
        spec: &S,
        train: &Dataset<F>,
        _holdout: &Dataset<F>,
        config: &BlinkMlConfig,
        seed: u64,
    ) -> Result<BaselineOutcome, CoreError> {
        let t = Instant::now();
        let frac = (1.0 - config.epsilon) * 0.1;
        let n = ((train.len() as f64 * frac) as usize).clamp(1, train.len());
        let sample = train.sample(n, split_seed(seed, 0));
        let model = spec.train(&sample, None, &config.optim)?;
        Ok(BaselineOutcome {
            sample_size: n,
            elapsed: t.elapsed(),
            models_trained: 1,
            model,
        })
    }
}

/// Grow the sample until the accuracy estimator certifies the contract
/// (`n_k = base · k²`, paper: base = 1000).
#[derive(Debug, Clone)]
pub struct IncEstimator {
    /// Base of the quadratic growth schedule.
    pub base: usize,
    /// Cap on the rows used for *statistics* computation at each
    /// iteration. `J = E[ψψᵀ]` is an expectation, so a bounded i.i.d.
    /// subsample estimates it regardless of how large the training
    /// sample has grown; without the cap, high-dimensional sparse
    /// workloads hit an `n × n` Gram eigendecomposition that grows
    /// cubically with the schedule. The trained model always uses the
    /// full `n_k` rows; only the certification statistics subsample.
    pub stats_sample_cap: usize,
}

impl Default for IncEstimator {
    fn default() -> Self {
        IncEstimator {
            base: 1_000,
            stats_sample_cap: 5_000,
        }
    }
}

impl SampleSizePolicy for IncEstimator {
    fn name(&self) -> &'static str {
        "IncEstimator"
    }

    fn run<F: FeatureVec, S: ModelClassSpec<F> + ?Sized>(
        &self,
        spec: &S,
        train: &Dataset<F>,
        holdout: &Dataset<F>,
        config: &BlinkMlConfig,
        seed: u64,
    ) -> Result<BaselineOutcome, CoreError> {
        let t = Instant::now();
        let full_n = train.len();
        let accuracy = ModelAccuracyEstimator::new(config.num_param_samples);
        let mut warm: Option<Vec<f64>> = None;
        // `k` doubles as the trained-model count: one model per round.
        for k in 1.. {
            let n = (self.base * k * k).min(full_n);
            let sample = train.sample(n, split_seed(seed, k as u64));
            let model = spec.train(&sample, warm.as_deref(), &config.optim)?;
            if n == full_n {
                // Reached the full data: exact by construction.
                return Ok(BaselineOutcome {
                    sample_size: n,
                    elapsed: t.elapsed(),
                    models_trained: k,
                    model,
                });
            }
            let cap = self.stats_sample_cap.max(1);
            let stats_sample;
            let stats_data = if sample.len() > cap {
                stats_sample = sample.sample(cap, split_seed(seed, 2_000 + k as u64));
                &stats_sample
            } else {
                &sample
            };
            let stats = compute_statistics(
                config.statistics_method,
                spec,
                model.parameters(),
                stats_data,
            )?;
            let eps = accuracy.estimate(
                spec,
                model.parameters(),
                &stats,
                n,
                full_n,
                holdout,
                config.delta,
                split_seed(seed, 1_000 + k as u64),
            );
            if eps <= config.epsilon {
                return Ok(BaselineOutcome {
                    sample_size: n,
                    elapsed: t.elapsed(),
                    models_trained: k,
                    model,
                });
            }
            warm = Some(model.into_parameters());
        }
        unreachable!("loop exits via n == full_n at the latest");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::logreg::LogisticRegressionSpec;
    use blinkml_data::generators::synthetic_logistic;

    fn setup() -> (
        blinkml_data::Dataset<blinkml_data::DenseVec>,
        blinkml_data::Dataset<blinkml_data::DenseVec>,
        LogisticRegressionSpec,
        BlinkMlConfig,
    ) {
        let (full, _) = synthetic_logistic(12_000, 4, 2.0, 1);
        let split = full.split(800, 0, 2);
        let config = BlinkMlConfig {
            epsilon: 0.08,
            num_param_samples: 48,
            ..BlinkMlConfig::default()
        };
        (
            split.train,
            split.holdout,
            LogisticRegressionSpec::new(1e-3),
            config,
        )
    }

    #[test]
    fn fixed_ratio_uses_one_percent() {
        let (train, holdout, spec, config) = setup();
        let out = FixedRatio::default()
            .run(&spec, &train, &holdout, &config, 5)
            .unwrap();
        assert_eq!(out.sample_size, train.len() / 100);
        assert_eq!(out.models_trained, 1);
    }

    #[test]
    fn relative_ratio_scales_with_epsilon() {
        let (train, holdout, spec, mut config) = setup();
        config.epsilon = 0.05; // 95% accuracy → 9.5% sample
        let out = RelativeRatio
            .run(&spec, &train, &holdout, &config, 6)
            .unwrap();
        let expect = (train.len() as f64 * 0.095) as usize;
        assert_eq!(out.sample_size, expect);
    }

    #[test]
    fn inc_estimator_stops_when_contract_met() {
        let (train, holdout, spec, mut config) = setup();
        config.epsilon = 0.10;
        let inc = IncEstimator {
            base: 500,
            ..IncEstimator::default()
        };
        let out = inc.run(&spec, &train, &holdout, &config, 7).unwrap();
        assert!(out.models_trained >= 1);
        assert!(out.sample_size <= train.len());
        // The growth schedule must match base·k².
        let k = out.models_trained;
        assert_eq!(out.sample_size, (500 * k * k).min(train.len()));
    }

    #[test]
    fn inc_estimator_reaches_full_data_for_impossible_contract() {
        let (train, holdout, spec, mut config) = setup();
        config.epsilon = 1e-9; // effectively unattainable from a sample
        let inc = IncEstimator {
            base: 2_000,
            ..IncEstimator::default()
        };
        let out = inc.run(&spec, &train, &holdout, &config, 8).unwrap();
        assert_eq!(out.sample_size, train.len());
        assert!(out.models_trained > 1);
    }

    #[test]
    fn policy_names() {
        assert_eq!(FixedRatio::default().name(), "FixedRatio");
        assert_eq!(RelativeRatio.name(), "RelativeRatio");
        assert_eq!(IncEstimator::default().name(), "IncEstimator");
    }
}
