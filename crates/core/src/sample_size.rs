//! Sample Size Estimator (paper §4).
//!
//! Finds the minimum sample size `n` such that a model trained on `n`
//! examples would satisfy the `(ε, δ)` contract against the full model —
//! **without training any additional model**. The probability
//! `Pr[v(m_n, m_N) ≤ ε]` is estimated by two-stage sampling from the
//! joint parameter distribution (`θ_n | θ_0`, then `θ_N | θ_n`,
//! Corollary 1 applied twice) over a fixed pool of unscaled draws
//! (sampling by scaling, §4.3), and the minimum `n` is located by binary
//! search, justified by the monotonicity of Theorem 2.

use crate::accuracy::DRAW_CHUNK;
use crate::diff_engine::{draw_pool, HoldoutScorer};
use crate::mcs::ModelClassSpec;
use crate::stats::ModelStatistics;
use blinkml_data::parallel::par_ranges_with;
use blinkml_data::{Dataset, FeatureVec};
use blinkml_prob::{conservative_level, empirical_quantile, split_seed};

/// The sample-size estimator; `num_samples` is the Monte Carlo draw
/// count `k` per stage.
#[derive(Debug, Clone)]
pub struct SampleSizeEstimator {
    /// Number of parameter draws `k`.
    pub num_samples: usize,
}

impl Default for SampleSizeEstimator {
    fn default() -> Self {
        SampleSizeEstimator { num_samples: 100 }
    }
}

/// Outcome of a sample-size search.
#[derive(Debug, Clone)]
pub struct SampleSizeEstimate {
    /// Estimated minimum sample size.
    pub n: usize,
    /// Number of binary-search probes evaluated.
    pub probes: usize,
}

impl SampleSizeEstimator {
    /// Estimator with `k` Monte Carlo draws per stage.
    pub fn new(num_samples: usize) -> Self {
        assert!(num_samples >= 2, "need at least two draws");
        SampleSizeEstimator { num_samples }
    }

    /// Estimate the minimum `n ∈ [n0, full_n]` whose trained model would
    /// satisfy `Pr[v(m_n, m_N) ≤ ε] ≥ 1 − δ`, using only the initial
    /// model `theta0` (trained on `n0` examples) and its statistics.
    #[allow(clippy::too_many_arguments)]
    pub fn estimate<F: FeatureVec, S: ModelClassSpec<F> + ?Sized>(
        &self,
        spec: &S,
        theta0: &[f64],
        stats: &ModelStatistics,
        n0: usize,
        full_n: usize,
        holdout: &Dataset<F>,
        epsilon: f64,
        delta: f64,
        seed: u64,
    ) -> SampleSizeEstimate {
        let scorer = HoldoutScorer::new(spec, holdout, theta0);
        self.estimate_scored(&scorer, stats, n0, full_n, epsilon, delta, seed)
    }

    /// [`SampleSizeEstimator::estimate`] against a pre-built
    /// [`HoldoutScorer`], so the base θ₀ score matrix is shared with the
    /// ε₀ accuracy estimate instead of being rebuilt (bit-identical
    /// result).
    #[allow(clippy::too_many_arguments)]
    pub fn estimate_scored<F: FeatureVec, S: ModelClassSpec<F> + ?Sized>(
        &self,
        scorer: &HoldoutScorer<'_, F, S>,
        stats: &ModelStatistics,
        n0: usize,
        full_n: usize,
        epsilon: f64,
        delta: f64,
        seed: u64,
    ) -> SampleSizeEstimate {
        self.estimate_scored_stoppable(scorer, stats, n0, full_n, epsilon, delta, seed, None)
            .expect("search without a stop probe always completes")
    }

    /// [`SampleSizeEstimator::estimate_scored`] with a cooperative stop
    /// probe polled before every binary-search probe: when `stop`
    /// returns `true` the search bails out with `None` (the caller
    /// degrades instead). A `None`/never-firing probe takes exactly the
    /// same numeric path as [`SampleSizeEstimator::estimate_scored`].
    #[allow(clippy::too_many_arguments)]
    pub fn estimate_scored_stoppable<F: FeatureVec, S: ModelClassSpec<F> + ?Sized>(
        &self,
        scorer: &HoldoutScorer<'_, F, S>,
        stats: &ModelStatistics,
        n0: usize,
        full_n: usize,
        epsilon: f64,
        delta: f64,
        seed: u64,
        stop: Option<&dyn Fn() -> bool>,
    ) -> Option<SampleSizeEstimate> {
        assert!(n0 > 0 && n0 <= full_n, "need 0 < n0 <= N");
        let k = self.num_samples;
        // Two independent unscaled pools: u drives θ_n | θ_0, w drives
        // θ_N | θ_n. Fixed across all probes (sampling by scaling).
        let pool_u = draw_pool(stats, k, split_seed(seed, 0));
        let pool_w = draw_pool(stats, k, split_seed(seed, 1));
        let engine = scorer.engine(&pool_u, &pool_w);
        let level = conservative_level(delta, k);
        let mut probes = 0usize;
        let stopped = || stop.is_some_and(|s| s());

        let mut satisfied = |n: usize| -> bool {
            probes += 1;
            let a1 = alpha(n0, n).sqrt();
            let a2 = alpha(n, full_n).sqrt();
            // Parallel over draws; per-chunk hit counts are integers, so
            // the sum is exact and thread-count independent.
            let hits: usize = par_ranges_with(k, DRAW_CHUNK, |range| {
                range
                    .filter(|&i| engine.diff_two_stage(i, a1, a2) <= epsilon)
                    .count()
            })
            .into_iter()
            .sum();
            hits as f64 / k as f64 >= level
        };

        if stopped() {
            return None;
        }
        if satisfied(n0) {
            return Some(SampleSizeEstimate { n: n0, probes });
        }
        // At n = N the second-stage scale is zero, so v ≡ 0 ≤ ε: the
        // search interval (lo unsatisfied, hi satisfied] is well-formed.
        let mut lo = n0;
        let mut hi = full_n;
        while hi - lo > 1 {
            if stopped() {
                return None;
            }
            let mid = lo + (hi - lo) / 2;
            if satisfied(mid) {
                hi = mid;
            } else {
                lo = mid;
            }
        }
        Some(SampleSizeEstimate { n: hi, probes })
    }

    /// The honest ε at a **fixed** sample size `n` — one point on the
    /// sample-size curve the binary search walks: the conservative
    /// Lemma-2 quantile of the two-stage prediction differences for a
    /// model trained on `n` of `full_n` examples, estimated from the
    /// pilot at `n0`. Called with the search's own sub-seed, it uses
    /// exactly the search's draw pools, so the value is bit-identical
    /// to what any coordinator (warm or cold) computes for that rung —
    /// this is what lets a degraded response report an exact achieved
    /// guarantee instead of the requested one.
    #[allow(clippy::too_many_arguments)]
    pub fn epsilon_at_scored<F: FeatureVec, S: ModelClassSpec<F> + ?Sized>(
        &self,
        scorer: &HoldoutScorer<'_, F, S>,
        stats: &ModelStatistics,
        n0: usize,
        n: usize,
        full_n: usize,
        delta: f64,
        seed: u64,
    ) -> f64 {
        assert!(n0 > 0 && n0 <= n && n <= full_n, "need 0 < n0 <= n <= N");
        let k = self.num_samples;
        let pool_u = draw_pool(stats, k, split_seed(seed, 0));
        let pool_w = draw_pool(stats, k, split_seed(seed, 1));
        let engine = scorer.engine(&pool_u, &pool_w);
        let a1 = alpha(n0, n).sqrt();
        let a2 = alpha(n, full_n).sqrt();
        let diffs: Vec<f64> = par_ranges_with(k, DRAW_CHUNK, |range| {
            range
                .map(|i| engine.diff_two_stage(i, a1, a2))
                .collect::<Vec<_>>()
        })
        .into_iter()
        .flatten()
        .collect();
        empirical_quantile(&diffs, conservative_level(delta, k))
    }
}

/// `α = 1/a − 1/b`, clamped at zero.
fn alpha(a: usize, b: usize) -> f64 {
    (1.0 / a as f64 - 1.0 / b as f64).max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diff_engine::DiffEngine;
    use crate::models::linreg::LinearRegressionSpec;
    use crate::models::logreg::LogisticRegressionSpec;
    use crate::stats::observed_fisher;
    use blinkml_data::generators::{synthetic_linear, synthetic_logistic};
    use blinkml_optim::OptimOptions;

    fn setup_logistic() -> (
        blinkml_data::Dataset<blinkml_data::DenseVec>,
        blinkml_data::Dataset<blinkml_data::DenseVec>,
        LogisticRegressionSpec,
        Vec<f64>,
        ModelStatistics,
        usize,
    ) {
        let (full, _) = synthetic_logistic(30_000, 5, 1.5, 1);
        let split = full.split(1_000, 0, 2);
        let spec = LogisticRegressionSpec::new(1e-3);
        let n0 = 500;
        let sample = split.train.sample(n0, 3);
        let model = spec.train(&sample, None, &OptimOptions::default()).unwrap();
        let stats = observed_fisher(&spec, model.parameters(), &sample).unwrap();
        (
            split.train,
            split.holdout,
            spec,
            model.into_parameters(),
            stats,
            n0,
        )
    }

    #[test]
    fn tighter_epsilon_needs_bigger_sample() {
        let (train, holdout, spec, theta0, stats, n0) = setup_logistic();
        let sse = SampleSizeEstimator::new(64);
        let loose = sse.estimate(
            &spec,
            &theta0,
            &stats,
            n0,
            train.len(),
            &holdout,
            0.20,
            0.05,
            7,
        );
        let tight = sse.estimate(
            &spec,
            &theta0,
            &stats,
            n0,
            train.len(),
            &holdout,
            0.02,
            0.05,
            7,
        );
        assert!(
            tight.n > loose.n,
            "ε=0.02 needs {} vs ε=0.20 needs {}",
            tight.n,
            loose.n
        );
        assert!(loose.n >= n0);
        assert!(tight.n <= train.len());
    }

    #[test]
    fn trivial_epsilon_is_satisfied_at_n0() {
        let (train, holdout, spec, theta0, stats, n0) = setup_logistic();
        let sse = SampleSizeEstimator::new(32);
        // ε close to 1 is satisfied by any classifier pair.
        let est = sse.estimate(
            &spec,
            &theta0,
            &stats,
            n0,
            train.len(),
            &holdout,
            0.95,
            0.05,
            9,
        );
        assert_eq!(est.n, n0);
        assert_eq!(est.probes, 1);
    }

    #[test]
    fn probes_are_logarithmic() {
        let (train, holdout, spec, theta0, stats, n0) = setup_logistic();
        let sse = SampleSizeEstimator::new(32);
        let est = sse.estimate(
            &spec,
            &theta0,
            &stats,
            n0,
            train.len(),
            &holdout,
            0.05,
            0.05,
            11,
        );
        // Binary search over ~29.5K values: about 15–16 probes plus the
        // initial check.
        assert!(est.probes <= 18, "probes {}", est.probes);
    }

    #[test]
    fn probe_satisfaction_is_monotone_in_n() {
        // Direct check of the Theorem-2 monotonicity on realized draws.
        let (train, holdout, spec, theta0, stats, n0) = setup_logistic();
        let k = 64;
        let pool_u = draw_pool(&stats, k, 1);
        let pool_w = draw_pool(&stats, k, 2);
        let engine = DiffEngine::new(&spec, &holdout, &theta0, &pool_u, &pool_w);
        let full_n = train.len();
        let frac = |n: usize| -> f64 {
            let a1 = alpha(n0, n).sqrt();
            let a2 = alpha(n, full_n).sqrt();
            (0..k)
                .filter(|&i| engine.diff_two_stage(i, a1, a2) <= 0.05)
                .count() as f64
                / k as f64
        };
        let f1 = frac(n0);
        let f2 = frac(4 * n0);
        let f3 = frac(full_n);
        assert!(f1 <= f2 + 0.1, "{f1} vs {f2}");
        assert!(f2 <= f3 + 1e-12, "{f2} vs {f3}");
        assert_eq!(f3, 1.0);
    }

    #[test]
    fn stop_probe_bails_out_deterministically() {
        use std::cell::Cell;
        let (train, holdout, spec, theta0, stats, n0) = setup_logistic();
        let scorer = HoldoutScorer::new(&spec, &holdout, &theta0);
        let sse = SampleSizeEstimator::new(32);
        // A probe that fires after two checks: the search must bail with
        // None instead of completing.
        let checks = Cell::new(0usize);
        let stop = move || {
            checks.set(checks.get() + 1);
            checks.get() > 2
        };
        let est = sse.estimate_scored_stoppable(
            &scorer,
            &stats,
            n0,
            train.len(),
            0.02,
            0.05,
            7,
            Some(&stop),
        );
        assert!(est.is_none(), "stop probe must abort the search");
        // A probe that never fires is bit-identical to the plain search.
        let never = || false;
        let a = sse
            .estimate_scored_stoppable(
                &scorer,
                &stats,
                n0,
                train.len(),
                0.02,
                0.05,
                7,
                Some(&never),
            )
            .unwrap();
        let b = sse.estimate_scored(&scorer, &stats, n0, train.len(), 0.02, 0.05, 7);
        assert_eq!(a.n, b.n);
        assert_eq!(a.probes, b.probes);
        // Immediately-firing probe: no probes at all.
        let always = || true;
        assert!(sse
            .estimate_scored_stoppable(
                &scorer,
                &stats,
                n0,
                train.len(),
                0.02,
                0.05,
                7,
                Some(&always),
            )
            .is_none());
    }

    #[test]
    fn curve_epsilon_is_monotone_and_consistent_with_search() {
        let (train, holdout, spec, theta0, stats, n0) = setup_logistic();
        let scorer = HoldoutScorer::new(&spec, &holdout, &theta0);
        let sse = SampleSizeEstimator::new(64);
        let full_n = train.len();
        let eps_small = sse.epsilon_at_scored(&scorer, &stats, n0, 2 * n0, full_n, 0.05, 7);
        let eps_big = sse.epsilon_at_scored(&scorer, &stats, n0, 8 * n0, full_n, 0.05, 7);
        assert!(
            eps_big <= eps_small,
            "curve must shrink with n: {eps_big} vs {eps_small}"
        );
        let eps_full = sse.epsilon_at_scored(&scorer, &stats, n0, full_n, full_n, 0.05, 7);
        assert_eq!(eps_full, 0.0, "at n = N the second stage is exact");
        // At the n the search chose for a target ε, the curve ε meets
        // the target: same draws, quantile vs hit-fraction duality.
        let target = 0.05;
        let est = sse.estimate_scored(&scorer, &stats, n0, full_n, target, 0.05, 7);
        let eps_at_n = sse.epsilon_at_scored(&scorer, &stats, n0, est.n, full_n, 0.05, 7);
        assert!(
            eps_at_n <= target,
            "curve ε at the chosen n ({eps_at_n}) must meet the target ({target})"
        );
    }

    #[test]
    fn estimated_size_actually_delivers_accuracy() {
        // Train at the estimated n and compare against a trained full
        // model: the realized difference should meet ε (statistically).
        let (full, _) = synthetic_linear(20_000, 4, 0.5, 5);
        let split = full.split(1_000, 0, 6);
        let spec = LinearRegressionSpec::new(1e-3);
        let opts = OptimOptions::default();
        let n0 = 400;
        let d0 = split.train.sample(n0, 7);
        let m0 = spec.train(&d0, None, &opts).unwrap();
        let stats = observed_fisher(&spec, m0.parameters(), &d0).unwrap();

        let epsilon = 0.05;
        let sse = SampleSizeEstimator::new(100);
        let est = sse.estimate(
            &spec,
            m0.parameters(),
            &stats,
            n0,
            split.train.len(),
            &split.holdout,
            epsilon,
            0.05,
            8,
        );
        assert!(
            est.n > n0,
            "ε=0.05 should need more than n0={n0}, got {}",
            est.n
        );

        let full_model = spec.train(&split.train, None, &opts).unwrap();
        let dn = split.train.sample(est.n, 9);
        let mn = spec.train(&dn, None, &opts).unwrap();
        let v = spec.diff(mn.parameters(), full_model.parameters(), &split.holdout);
        // One realization; allow modest slack over ε for test stability.
        assert!(v <= epsilon * 1.5, "realized v = {v} at n = {}", est.n);
    }
}
