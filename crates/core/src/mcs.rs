//! The Model Class Specification (MCS) abstraction.
//!
//! An MCS is the contract between BlinkML's generic machinery and a
//! concrete model class (paper §2.2): it exposes the regularized
//! negative log-likelihood objective, the per-example gradient list
//! (`grads`), the prediction function, and the prediction-difference
//! metric (`diff`). Everything else in the system — statistics
//! computation, accuracy estimation, sample-size search, the coordinator
//! — is written against this trait only.

use crate::error::CoreError;
use crate::grads::Grads;
use blinkml_data::{Dataset, DatasetMatrix, FeatureVec, MatrixView, TrainScratch};
use blinkml_linalg::Matrix;
use blinkml_optim::{minimize, Objective, OptimOptions};
use serde::{Deserialize, Serialize};
use std::cell::RefCell;

/// A model trained on a specific sample.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TrainedModel {
    theta: Vec<f64>,
    /// Sample size the model was trained on.
    pub sample_size: usize,
    /// Optimizer iterations (0 for closed-form training).
    pub iterations: usize,
    /// Whether the optimizer reported convergence.
    pub converged: bool,
    /// Final objective value.
    pub objective_value: f64,
}

impl TrainedModel {
    /// Construct from raw parts (used by MCS `train` implementations).
    pub fn new(
        theta: Vec<f64>,
        sample_size: usize,
        iterations: usize,
        converged: bool,
        objective_value: f64,
    ) -> Self {
        TrainedModel {
            theta,
            sample_size,
            iterations,
            converged,
            objective_value,
        }
    }

    /// The learned parameter vector `θ`.
    pub fn parameters(&self) -> &[f64] {
        &self.theta
    }

    /// Consume the model, returning `θ`.
    pub fn into_parameters(self) -> Vec<f64> {
        self.theta
    }
}

/// One grid point of a multi-λ batched objective evaluation
/// ([`ModelClassSpec::value_grad_batched_multi`]): the probe point `θ`,
/// the L2 coefficient `β` of this grid point, the sample-size prefix it
/// evaluates over, and its output buffers.
#[derive(Debug)]
pub struct SweepEval<'r> {
    /// Parameter vector of this grid point's probe.
    pub theta: &'r [f64],
    /// L2 regularization coefficient `β` of this grid point (replaces
    /// the spec's own [`ModelClassSpec::regularization`]).
    pub beta: f64,
    /// The probe evaluates over the view's first `rows` rows — the grid
    /// point's sample, nested as a prefix of the shared capture.
    pub rows: usize,
    /// Gradient output `∇f(θ)` (`param_dim` long, overwritten).
    pub grad: &'r mut [f64],
    /// Objective value output `f(θ)`.
    pub value: f64,
}

impl<'r> SweepEval<'r> {
    /// An evaluation of probe `θ` under coefficient `beta` over the
    /// first `rows` rows, writing the gradient into `grad`.
    pub fn new(theta: &'r [f64], beta: f64, rows: usize, grad: &'r mut [f64]) -> Self {
        SweepEval {
            theta,
            beta,
            rows,
            grad,
            value: 0.0,
        }
    }
}

/// What a model's prediction is computed from, for the fast-diff path.
///
/// Every GLM in the paper predicts through per-output linear scores
/// `x·θ_block`; exposing those lets the estimators precompute holdout
/// score matrices once per parameter-pool element and then evaluate the
/// prediction difference at any sample size in `O(holdout · outputs)`
/// (the engine behind the paper's "no additional training" sample-size
/// search being cheap in practice).
pub trait ModelClassSpec<F: FeatureVec>: Send + Sync {
    /// Short model-class name for reports.
    fn name(&self) -> &'static str;

    /// Parameter dimension for a dataset of feature dimension
    /// `data_dim`.
    fn param_dim(&self, data_dim: usize) -> usize;

    /// L2 regularization coefficient `β` (`r(θ) = βθ`, `J_r = βI`);
    /// return 0 for unregularized models.
    fn regularization(&self) -> f64;

    /// The set of label values this model class accepts — the contract
    /// the streaming ingest gate (`blinkml_data::stream`) enforces at
    /// append time so out-of-domain labels never poison pooled
    /// statistics. Defaults to any finite real (regression); supervised
    /// classification/count models override.
    fn label_domain(&self) -> blinkml_data::LabelDomain {
        blinkml_data::LabelDomain::AnyFinite
    }

    /// Averaged objective `f_n(θ)` (Equation 2) and its gradient on
    /// `data`.
    ///
    /// This per-example walk is the **scalar reference path**: the
    /// batched engine ([`Self::value_grad_batched`]) must reproduce it
    /// bit for bit (see the exactness contract in
    /// `docs/ARCHITECTURE.md`), and the training benchmarks measure
    /// against it.
    fn objective(&self, theta: &[f64], data: &Dataset<F>) -> (f64, Vec<f64>);

    /// Whether this model class implements [`Self::value_grad_batched`].
    /// When true, the default [`Self::train`] captures the sample as a
    /// [`MatrixView`] once and routes every optimizer probe through the
    /// batched kernels, and the coordinator serves samples as zero-copy
    /// gathered views over one pool-resident [`DatasetMatrix`].
    fn batched_training(&self) -> bool {
        false
    }

    /// Batched objective evaluation: `f_n(θ)` returned, `∇f_n(θ)`
    /// written into `grad`, against a design-matrix view — the full
    /// matrix of a materialized sample, or a gathered index view over
    /// the pool matrix (the zero-copy sample representation). The
    /// contract is exactness: the value and gradient must equal
    /// [`Self::objective`] on the (conceptually materialized) sample the
    /// view selects — for the built-in model classes they are
    /// bit-identical at any thread budget and for both view kinds.
    /// `scratch` persists across calls so line-search probes allocate
    /// nothing in steady state.
    ///
    /// Only called when [`Self::batched_training`] returns true.
    fn value_grad_batched(
        &self,
        _theta: &[f64],
        _xm: &MatrixView,
        _scratch: &mut TrainScratch,
        _grad: &mut [f64],
    ) -> f64 {
        unreachable!("value_grad_batched() called on a model without batched training");
    }

    /// Whether this model class implements
    /// [`Self::value_grad_batched_multi`] — the fused multi-λ objective
    /// kernel the sweep engine batches grid points through.
    fn multi_lambda_batched(&self) -> bool {
        false
    }

    /// Batched **multi-λ** objective evaluation: compute every grid
    /// point's `f(θ_k)` and `∇f(θ_k)` — each under its own L2
    /// coefficient `β_k` and over its own row-count prefix of `xm` — in
    /// one fused pass over the shared sample capture (margins computed
    /// once per chunk per probe while the rows are cache-hot, the K
    /// regularizer terms applied per-λ afterwards).
    ///
    /// The contract is exactness: each eval's `(value, grad)` must be
    /// **bit-identical** to [`Self::value_grad_batched`] on a spec with
    /// [`Self::with_regularization`]`(β_k)` applied, over
    /// `xm.prefix(rows_k)`, at any thread budget.
    ///
    /// Only called when [`Self::multi_lambda_batched`] returns true.
    fn value_grad_batched_multi(
        &self,
        _evals: &mut [SweepEval],
        _xm: &MatrixView,
        _scratch: &mut TrainScratch,
    ) {
        unreachable!("value_grad_batched_multi() called on a model without multi-λ support");
    }

    /// This spec with its L2 coefficient replaced by `beta` — the
    /// sweep engine's way of instantiating one grid point. `None` (the
    /// default) marks model classes whose regularization cannot be
    /// swapped out (no regularizer, or one that is not a plain L2
    /// coefficient); `Session::sweep` rejects those with a config error.
    fn with_regularization(&self, _beta: f64) -> Option<Box<dyn ModelClassSpec<F>>> {
        None
    }

    /// The per-example gradient list `ψ_i = q(θ; x_i, y_i) + r(θ)`
    /// (paper's `grads` MCS method).
    fn grads(&self, theta: &[f64], data: &Dataset<F>) -> Grads;

    /// [`Self::grads`] with an optionally cached design-matrix view of
    /// the sample (the coordinator reuses the view served for training
    /// when computing the same sample's statistics). When the view is a
    /// *gathered* pool view, `data` is the **pool** the indices point
    /// into, not the sample. The default ignores the cache — and, for a
    /// gathered view, falls back to materializing the indexed subset so
    /// model classes that never override this stay correct; batched
    /// model classes override it with an allocation-light batched pass.
    fn grads_cached(&self, theta: &[f64], data: &Dataset<F>, xm: Option<&MatrixView>) -> Grads {
        if let Some(idx) = xm.and_then(|v| v.sample_of()) {
            return self.grads(theta, &data.subset(idx));
        }
        self.grads(theta, data)
    }

    /// Analytic Hessian of `g_n` at `θ` when a closed form exists
    /// (paper §3.4 Method 1); `None` for models without one.
    fn closed_form_hessian(&self, _theta: &[f64], _data: &Dataset<F>) -> Option<Matrix> {
        None
    }

    /// [`Self::closed_form_hessian`] with an optionally cached
    /// design-matrix view (same reuse pattern — and the same
    /// gathered-view fallback — as [`Self::grads_cached`]).
    fn closed_form_hessian_cached(
        &self,
        theta: &[f64],
        data: &Dataset<F>,
        xm: Option<&MatrixView>,
    ) -> Option<Matrix> {
        if let Some(idx) = xm.and_then(|v| v.sample_of()) {
            return self.closed_form_hessian(theta, &data.subset(idx));
        }
        self.closed_form_hessian(theta, data)
    }

    /// Predict the output for one feature vector (class index for
    /// classifiers, real value for regressors).
    fn predict(&self, theta: &[f64], x: &F) -> f64;

    /// Prediction difference `v` between two parameter vectors on a
    /// holdout set: disagreement rate for classifiers, RMS prediction
    /// difference for regressors, `1 − cos` for PPCA (paper §2.1 and
    /// Appendix C).
    fn diff(&self, theta_a: &[f64], theta_b: &[f64], holdout: &Dataset<F>) -> f64;

    /// Generalization error on labelled data: misclassification rate for
    /// classifiers, RMSE for regressors.
    fn generalization_error(&self, theta: &[f64], data: &Dataset<F>) -> f64;

    /// Number of linear-score outputs per example, when predictions are
    /// a pure function of per-block linear scores `x·θ_block`
    /// (`None` disables the fast-diff path; PPCA uses `None`).
    fn num_margin_outputs(&self, _data_dim: usize) -> Option<usize> {
        None
    }

    /// Linear scores for one example under `θ`, written into `out`
    /// (length [`Self::num_margin_outputs`]). Only called when margins
    /// are supported.
    fn margins(&self, _theta: &[f64], _x: &F, _out: &mut [f64]) {
        unreachable!("margins() called on a model without margin support");
    }

    /// The margin weight matrix `W(θ)` (`data_dim × outputs`, with
    /// `outputs` = [`Self::num_margin_outputs`]) such that the margin
    /// vector of example `x` is `xᵀ W(θ)`. The mapping `θ ↦ W(θ)` must be
    /// linear (for GLMs it is a slice, for max-entropy a reshape), so it
    /// applies to parameter-perturbation vectors as well as parameters.
    ///
    /// Returning `Some` lets `DiffEngine` build the holdout score
    /// matrices of an entire parameter pool with one blocked GEMM instead
    /// of per-example [`Self::margins`] calls — the batched fast path
    /// behind the estimators. `None` (the default) falls back to
    /// per-example scoring.
    fn margin_weights(&self, _theta: &[f64], _data_dim: usize) -> Option<Matrix> {
        None
    }

    /// Prediction as a function of the margin scores (paired with
    /// [`Self::margins`]).
    fn predict_from_margins(&self, _scores: &[f64]) -> f64 {
        unreachable!("predict_from_margins() called on a model without margin support");
    }

    /// Whether `v` compares real-valued predictions (RMS) rather than
    /// discrete ones (disagreement rate). Drives the fast-diff math.
    fn diff_is_rms(&self) -> bool {
        false
    }

    /// Train on `data`, optionally warm-starting from a previous
    /// parameter vector. The default implementation materializes the
    /// sample once (when [`Self::batched_training`] is on) and runs the
    /// dimension-appropriate quasi-Newton solver on the batched
    /// objective; closed-form models (PPCA) override it.
    fn train(
        &self,
        data: &Dataset<F>,
        warm_start: Option<&[f64]>,
        options: &OptimOptions,
    ) -> Result<TrainedModel, CoreError> {
        self.train_with_matrix(data, None, warm_start, options)
    }

    /// [`Self::train`] against an optionally pre-built design-matrix
    /// view of the sample — either a full view of a materialized
    /// sample, or a **gathered** view into a pool-resident matrix (the
    /// coordinator's zero-copy path, where `data` is the pool the view's
    /// indices select from). The view is reused for both training and
    /// the subsequent statistics phase. Passing `None` captures (or
    /// skips) the matrix internally.
    ///
    /// # Panics
    /// Panics (in debug builds) when `xm` does not match `data`'s
    /// feature dimension.
    fn train_with_matrix(
        &self,
        data: &Dataset<F>,
        xm: Option<&MatrixView>,
        warm_start: Option<&[f64]>,
        options: &OptimOptions,
    ) -> Result<TrainedModel, CoreError> {
        let sample_len = xm.map_or(data.len(), |v| v.len());
        if sample_len == 0 {
            return Err(CoreError::InvalidData(
                "cannot train on an empty dataset".into(),
            ));
        }
        // The view's row count is authoritative: it may select a sample
        // out of `data` (gathered pool view, or a packed capture passed
        // with the pool as `data`); only the feature dimension must
        // agree.
        if let Some(v) = xm {
            debug_assert_eq!(v.dim(), data.dim(), "cached matrix dim mismatch");
        }
        let dim = self.param_dim(data.dim());
        let theta0: Vec<f64> = match warm_start {
            Some(w) => {
                if w.len() != dim {
                    return Err(CoreError::InvalidConfig(format!(
                        "warm start has dim {}, model needs {dim}",
                        w.len()
                    )));
                }
                w.to_vec()
            }
            None => vec![0.0; dim],
        };
        let result = if self.batched_training() {
            let owned;
            let view = match xm {
                Some(v) => *v,
                None => {
                    owned = DatasetMatrix::from_dataset(data);
                    owned.view()
                }
            };
            let adapter = BatchedSpecObjective {
                spec: self,
                dim,
                xm: view,
                scratch: RefCell::new(TrainScratch::new()),
                _marker: std::marker::PhantomData,
            };
            minimize(&adapter, &theta0, options)?
        } else if let Some(idx) = xm.and_then(|v| v.sample_of()) {
            // Scalar-path model handed a gathered pool view: materialize
            // the indexed sample so the per-example objective sees the
            // sample, not the pool (correctness fallback; the
            // coordinator only serves gathered views to batched specs).
            let sample = data.subset(idx);
            let adapter = SpecObjective {
                spec: self,
                data: &sample,
            };
            minimize(&adapter, &theta0, options)?
        } else {
            let adapter = SpecObjective { spec: self, data };
            minimize(&adapter, &theta0, options)?
        };
        Ok(TrainedModel {
            theta: result.theta,
            sample_size: sample_len,
            iterations: result.iterations,
            converged: result.converged,
            objective_value: result.value,
        })
    }
}

/// Adapter exposing the scalar MCS objective to the optimizer.
struct SpecObjective<'a, F: FeatureVec, S: ModelClassSpec<F> + ?Sized> {
    spec: &'a S,
    data: &'a Dataset<F>,
}

impl<F: FeatureVec, S: ModelClassSpec<F> + ?Sized> Objective for SpecObjective<'_, F, S> {
    fn dim(&self) -> usize {
        self.spec.param_dim(self.data.dim())
    }

    fn value_grad(&self, theta: &[f64]) -> (f64, Vec<f64>) {
        self.spec.objective(theta, self.data)
    }
}

/// Adapter exposing the batched MCS objective to the optimizer: the
/// design-matrix view is held for the whole solve and the scratch
/// buffers persist across probes, so `value_grad_into` allocates
/// nothing.
struct BatchedSpecObjective<'a, F: FeatureVec, S: ModelClassSpec<F> + ?Sized> {
    spec: &'a S,
    dim: usize,
    xm: MatrixView<'a>,
    scratch: RefCell<TrainScratch>,
    _marker: std::marker::PhantomData<fn() -> F>,
}

impl<F: FeatureVec, S: ModelClassSpec<F> + ?Sized> Objective for BatchedSpecObjective<'_, F, S> {
    fn dim(&self) -> usize {
        self.dim
    }

    fn value_grad(&self, theta: &[f64]) -> (f64, Vec<f64>) {
        let mut grad = vec![0.0; self.dim];
        let value = self.value_grad_into(theta, &mut grad);
        (value, grad)
    }

    fn value_grad_into(&self, theta: &[f64], grad: &mut [f64]) -> f64 {
        self.spec
            .value_grad_batched(theta, &self.xm, &mut self.scratch.borrow_mut(), grad)
    }
}

/// Disagreement rate between two discrete predictors over a holdout set.
pub fn classification_diff<F: FeatureVec>(
    predict: impl Fn(&F) -> f64,
    predict_other: impl Fn(&F) -> f64,
    holdout: &Dataset<F>,
) -> f64 {
    if holdout.is_empty() {
        return 0.0;
    }
    let disagreements = holdout
        .iter()
        .filter(|e| predict(&e.x) != predict_other(&e.x))
        .count();
    disagreements as f64 / holdout.len() as f64
}

/// RMS difference between two real-valued predictors over a holdout set.
pub fn regression_diff<F: FeatureVec>(
    predict: impl Fn(&F) -> f64,
    predict_other: impl Fn(&F) -> f64,
    holdout: &Dataset<F>,
) -> f64 {
    if holdout.is_empty() {
        return 0.0;
    }
    let sum_sq: f64 = holdout
        .iter()
        .map(|e| {
            let d = predict(&e.x) - predict_other(&e.x);
            d * d
        })
        .sum();
    (sum_sq / holdout.len() as f64).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use blinkml_data::DenseVec;
    use blinkml_data::Example;

    fn toy_holdout() -> Dataset<DenseVec> {
        let examples = (0..4)
            .map(|i| Example {
                x: DenseVec::new(vec![i as f64]),
                y: 0.0,
            })
            .collect();
        Dataset::new("toy", 1, examples)
    }

    #[test]
    fn classification_diff_counts_disagreements() {
        let h = toy_holdout();
        // Predictors disagree on x >= 2 (two of four examples).
        let a = |x: &DenseVec| if x.0[0] >= 2.0 { 1.0 } else { 0.0 };
        let b = |_: &DenseVec| 0.0;
        assert!((classification_diff(a, b, &h) - 0.5).abs() < 1e-12);
        assert_eq!(classification_diff(b, b, &h), 0.0);
    }

    #[test]
    fn regression_diff_is_rms() {
        let h = toy_holdout();
        let a = |x: &DenseVec| x.0[0];
        let b = |x: &DenseVec| x.0[0] + 2.0;
        assert!((regression_diff(a, b, &h) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn diff_of_empty_holdout_is_zero() {
        let h = Dataset::<DenseVec>::new("empty", 1, vec![]);
        assert_eq!(classification_diff(|_| 0.0, |_| 1.0, &h), 0.0);
        assert_eq!(regression_diff(|_| 0.0, |_| 1.0, &h), 0.0);
    }

    #[test]
    fn trained_model_accessors() {
        let m = TrainedModel::new(vec![1.0, 2.0], 100, 5, true, 0.25);
        assert_eq!(m.parameters(), &[1.0, 2.0]);
        assert_eq!(m.sample_size, 100);
        assert!(m.converged);
        assert_eq!(m.into_parameters(), vec![1.0, 2.0]);
    }
}
