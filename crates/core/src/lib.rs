//! The BlinkML core: approximate MLE training with probabilistic
//! guarantees.
//!
//! This crate implements the system described in *BlinkML: Efficient
//! Maximum Likelihood Estimation with Probabilistic Guarantees* (SIGMOD
//! 2019):
//!
//! * [`mcs`] — the Model Class Specification abstraction (`objective`,
//!   `grads`, `predict`, `diff`) that keeps the rest of the system
//!   model-agnostic (paper §2.2),
//! * [`models`] — linear regression, logistic regression, max-entropy
//!   classification, Poisson regression, and PPCA,
//! * [`grads`] — per-example gradient matrices in dense and
//!   sparse-plus-shift layouts,
//! * [`stats`] — the three statistics computation methods (ClosedForm,
//!   InverseGradients, ObservedFisher) producing a sampling-ready factor
//!   of `H⁻¹JH⁻¹` (paper §3.4, §4.3),
//! * [`diff_engine`] — margin-cached prediction-difference evaluation
//!   over parameter pools,
//! * [`accuracy`] — the Model Accuracy Estimator (paper §3),
//! * [`sample_size`] — the Sample Size Estimator (paper §4),
//! * [`coordinator`] — the end-to-end workflow (paper §2.3),
//! * [`session`] — the amortized multi-query Session API (pool-resident
//!   design matrix + cached pilot statistics across repeated `train()`
//!   calls — the serving scenario),
//! * [`serve`] — the multi-tenant serving layer (request queue + worker
//!   pool, keyed LRU over pilot artifacts, in-flight coalescing) that
//!   promotes the Session's amortization to a concurrent service,
//!   including the streaming path: epoch-snapshot isolation over
//!   `blinkml_data::stream` pools with a drift-honest staleness ladder,
//! * [`moments`] — incremental rank-k maintenance of the pilot's
//!   second-moment statistics under streaming appends, with a
//!   verified-equivalence mode pinning it against cold recomputes,
//! * [`baselines`] — FixedRatio / RelativeRatio / IncEstimator from the
//!   paper's §5.4 evaluation.

pub mod accuracy;
pub mod baselines;
pub mod config;
pub mod coordinator;
pub mod diff_engine;
pub mod error;
pub mod grads;
pub mod mcs;
pub mod models;
pub mod moments;
pub mod sample_size;
pub mod serve;
pub mod session;
pub mod stats;
pub mod sweep;
#[doc(hidden)]
pub mod testing;

pub use accuracy::ModelAccuracyEstimator;
pub use config::{
    BlinkMlConfig, ExecConfig, SamplingMode, ServeConfig, ShedPolicy, SpectralMethod,
    StatisticsMethod, WarmStartPolicy,
};
pub use coordinator::{Coordinator, TrainingOutcome, TrainingPhaseTimes};
pub use error::CoreError;
pub use mcs::{ModelClassSpec, SweepEval, TrainedModel};
pub use moments::IncrementalSecondMoment;
pub use sample_size::{SampleSizeEstimate, SampleSizeEstimator};
pub use serve::resilience::{CancelToken, DegradationRung, Pressure};
pub use serve::{
    DatasetShard, Query, ResponseHandle, ServeError, ServedResponse, ServedSweep, Server,
    ServerStats, StreamShard, SweepQuery, SweepResponseHandle,
};
pub use session::Session;
pub use stats::{
    compute_statistics, compute_statistics_cached, compute_statistics_spectral, ModelStatistics,
};
pub use sweep::{SweepPlan, SweepPoint, SweepResult};
