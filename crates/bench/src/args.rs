//! Minimal `key=value` command-line parsing for the experiment binaries.
//!
//! Every binary accepts `key=value` pairs, e.g.
//! `cargo run --release -p blinkml-bench --bin fig5_speedup -- reps=5 scale=0.5`.
//! Unknown keys are rejected loudly so typos cannot silently change an
//! experiment.

use std::collections::BTreeMap;

/// Parsed experiment arguments.
#[derive(Debug, Clone)]
pub struct BenchArgs {
    values: BTreeMap<String, String>,
}

impl BenchArgs {
    /// Parse `std::env::args`, validating keys against `allowed`.
    ///
    /// # Panics
    /// Panics (with a usage message) on malformed or unknown arguments.
    pub fn parse(allowed: &[&str]) -> Self {
        Self::from_iter(std::env::args().skip(1), allowed)
    }

    /// Parse an explicit argument iterator (testable entry point).
    pub fn from_iter(args: impl IntoIterator<Item = String>, allowed: &[&str]) -> Self {
        let mut values = BTreeMap::new();
        for arg in args {
            let Some((key, value)) = arg.split_once('=') else {
                panic!("malformed argument '{arg}': expected key=value (allowed: {allowed:?})");
            };
            if !allowed.contains(&key) {
                panic!("unknown argument '{key}' (allowed: {allowed:?})");
            }
            values.insert(key.to_string(), value.to_string());
        }
        BenchArgs { values }
    }

    /// A `usize` argument with a default.
    pub fn get_usize(&self, key: &str, default: usize) -> usize {
        self.values
            .get(key)
            .map(|v| {
                v.parse()
                    .unwrap_or_else(|_| panic!("argument '{key}' must be an integer"))
            })
            .unwrap_or(default)
    }

    /// An `f64` argument with a default.
    pub fn get_f64(&self, key: &str, default: f64) -> f64 {
        self.values
            .get(key)
            .map(|v| {
                v.parse()
                    .unwrap_or_else(|_| panic!("argument '{key}' must be a number"))
            })
            .unwrap_or(default)
    }

    /// A `u64` argument with a default (seeds).
    pub fn get_u64(&self, key: &str, default: u64) -> u64 {
        self.values
            .get(key)
            .map(|v| {
                v.parse()
                    .unwrap_or_else(|_| panic!("argument '{key}' must be an integer"))
            })
            .unwrap_or(default)
    }

    /// A string argument with a default.
    pub fn get_str(&self, key: &str, default: &str) -> String {
        self.values
            .get(key)
            .cloned()
            .unwrap_or_else(|| default.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_and_defaults() {
        let args = BenchArgs::from_iter(
            ["reps=3".to_string(), "scale=0.5".to_string()],
            &["reps", "scale", "seed"],
        );
        assert_eq!(args.get_usize("reps", 20), 3);
        assert!((args.get_f64("scale", 1.0) - 0.5).abs() < 1e-12);
        assert_eq!(args.get_u64("seed", 42), 42);
        assert_eq!(args.get_str("mode", "full"), "full");
    }

    #[test]
    #[should_panic(expected = "unknown argument")]
    fn rejects_unknown_keys() {
        BenchArgs::from_iter(["bogus=1".to_string()], &["reps"]);
    }

    #[test]
    #[should_panic(expected = "malformed argument")]
    fn rejects_malformed() {
        BenchArgs::from_iter(["reps".to_string()], &["reps"]);
    }

    #[test]
    #[should_panic(expected = "must be an integer")]
    fn rejects_bad_types() {
        let args = BenchArgs::from_iter(["reps=abc".to_string()], &["reps"]);
        args.get_usize("reps", 1);
    }
}
