//! Fixed-width table printing and JSON result capture.

use std::fmt::Write as _;
use std::io::Write as _;
use std::path::PathBuf;
use std::time::Duration;

/// A fixed-width text table printed in the paper's row format.
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// New table with a title and column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header arity).
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells.to_vec());
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render to a string.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "\n== {} ==", self.title);
        let mut line = String::new();
        for (h, w) in self.headers.iter().zip(&widths) {
            let _ = write!(line, "{h:>w$}  ");
        }
        let _ = writeln!(out, "{}", line.trim_end());
        let _ = writeln!(out, "{}", "-".repeat(line.trim_end().len()));
        for row in &self.rows {
            let mut line = String::new();
            for (cell, w) in row.iter().zip(&widths) {
                let _ = write!(line, "{cell:>w$}  ");
            }
            let _ = writeln!(out, "{}", line.trim_end());
        }
        out
    }

    /// Print to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Interleaved minimum wall-clock times of a baseline/candidate pair.
///
/// The two arms alternate with the order flipped every rep
/// (A B, B A, A B, …), so slow drift *and* run-order effects on a
/// shared host hit both equally, and the per-arm **minimum** is
/// reported — the robust estimator for deterministic kernels, whose
/// timing noise is strictly additive. (Separately-batched medians let a
/// few ms of jitter read as a phantom regression on near-identical
/// arms.) Shared by the `pipeline_baseline` and `spectral_baseline`
/// recorders.
pub fn paired_min_times<A, B>(
    reps: usize,
    mut baseline: impl FnMut() -> A,
    mut candidate: impl FnMut() -> B,
) -> (Duration, Duration) {
    use std::time::Instant;
    let mut best_baseline = Duration::MAX;
    let mut best_candidate = Duration::MAX;
    fn time_into(best: &mut Duration, f: &mut dyn FnMut()) {
        let t = Instant::now();
        f();
        *best = (*best).min(t.elapsed());
    }
    for rep in 0..reps.max(1) {
        let mut run_baseline = || {
            std::hint::black_box(baseline());
        };
        let mut run_candidate = || {
            std::hint::black_box(candidate());
        };
        if rep % 2 == 0 {
            time_into(&mut best_baseline, &mut run_baseline);
            time_into(&mut best_candidate, &mut run_candidate);
        } else {
            time_into(&mut best_candidate, &mut run_candidate);
            time_into(&mut best_baseline, &mut run_baseline);
        }
    }
    (best_baseline, best_candidate)
}

/// Human-readable duration (`1.23 s` / `45.6 ms`).
pub fn fmt_duration(d: Duration) -> String {
    let s = d.as_secs_f64();
    if s >= 1.0 {
        format!("{s:.2} s")
    } else {
        format!("{:.1} ms", s * 1e3)
    }
}

/// Append one JSON line of experiment results to
/// `results/<experiment>.jsonl` (relative to the workspace root), so
/// EXPERIMENTS.md can be regenerated from raw data.
pub fn append_result(experiment: &str, json: &serde_json::Value) {
    let dir = results_dir();
    if std::fs::create_dir_all(&dir).is_err() {
        return; // result capture is best-effort
    }
    let path = dir.join(format!("{experiment}.jsonl"));
    if let Ok(mut f) = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
    {
        let _ = writeln!(f, "{json}");
    }
}

/// Write one `results/BENCH_*.json` baseline document atomically:
/// the bytes land in a same-directory temp file which is fsynced and
/// renamed over the target, so a crash (or a SIGKILLed bench run) can
/// never leave a truncated or interleaved baseline behind — readers
/// see either the old document or the new one, whole.
///
/// Panics on I/O failure: a baseline run whose results cannot be
/// captured has nothing to report.
pub fn write_baseline(filename: &str, doc: &serde_json::Value) -> PathBuf {
    let dir = results_dir();
    std::fs::create_dir_all(&dir).expect("create results dir");
    let path = dir.join(filename);
    let tmp = dir.join(format!("{filename}.tmp.{}", std::process::id()));
    let mut f = std::fs::File::create(&tmp).expect("create temp baseline");
    f.write_all(format!("{doc}\n").as_bytes())
        .expect("write baseline");
    f.sync_all().expect("sync baseline");
    drop(f);
    std::fs::rename(&tmp, &path).expect("publish baseline");
    path
}

/// The results directory (override with `BLINKML_RESULTS_DIR`).
pub fn results_dir() -> PathBuf {
    std::env::var_os("BLINKML_RESULTS_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("results"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new("demo", &["a", "longer"]);
        t.row(&["1".into(), "2".into()]);
        t.row(&["100".into(), "x".into()]);
        let s = t.render();
        assert!(s.contains("demo"));
        assert!(s.contains("longer"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "row arity mismatch")]
    fn table_rejects_wrong_arity() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.row(&["only-one".into()]);
    }

    #[test]
    fn durations_format() {
        assert_eq!(fmt_duration(Duration::from_millis(2_500)), "2.50 s");
        assert_eq!(fmt_duration(Duration::from_micros(45_600)), "45.6 ms");
    }
}
