//! Shared harness for the BlinkML experiment suite.
//!
//! Each binary in `src/bin/` regenerates one table/figure of the paper's
//! evaluation (see DESIGN.md §4 for the index). This library provides
//! the common pieces: the eight (model, dataset) combinations of §5.1,
//! timing helpers, fixed-width table printing, and JSON result capture
//! for EXPERIMENTS.md.

pub mod alloc;
pub mod args;
pub mod combos;
pub mod report;
pub mod seqref;

pub use args::BenchArgs;
pub use combos::{ComboId, ComboRun};
pub use report::{fmt_duration, paired_min_times, Table};

use std::time::{Duration, Instant};

/// Time a closure, returning its output and the elapsed wall-clock time.
pub fn time_it<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let t = Instant::now();
    let out = f();
    (out, t.elapsed())
}

/// The requested-accuracy sweep used by Figures 5 and 6 for Lin/LR/ME.
pub const GLM_ACCURACY_SWEEP: &[f64] = &[0.80, 0.85, 0.90, 0.95, 0.96, 0.97, 0.98, 0.99];

/// The requested-accuracy sweep used by Figures 5 and 6 for PPCA.
pub const PPCA_ACCURACY_SWEEP: &[f64] = &[0.90, 0.95, 0.99, 0.995, 0.999, 0.9995, 0.9999];
