//! Sequential reference paths for before/after pipeline benchmarks.
//!
//! The estimator hot paths went batched and parallel; these helpers keep
//! the *old* sequential behaviour reachable so `benches/pipeline.rs` and
//! the `pipeline_baseline` binary can measure the speedup honestly
//! instead of against a reimplementation from memory.

use blinkml_linalg::{blas, Matrix};

/// Re-export of the shared sequential-reference wrapper: hides
/// `ModelClassSpec::margin_weights`, forcing `DiffEngine` onto the
/// per-example margins path — the pre-batching construction behaviour.
pub use blinkml_core::testing::NoBatch;

/// The pre-refactor dense second moment: one sequential `syrk_t` pass
/// (what `Grads::second_moment` did before routing through the parallel
/// kernels).
pub fn second_moment_seq(m: &Matrix) -> Matrix {
    let n = m.rows().max(1) as f64;
    let mut j = blas::syrk_t(m);
    j.scale(1.0 / n);
    j
}

/// Deterministic pseudo-random matrix shared by the pipeline benches
/// (the workspace-wide generator from `blinkml_linalg::testing`).
pub fn bench_matrix(rows: usize, cols: usize, seed: u64) -> Matrix {
    blinkml_linalg::testing::xorshift_matrix(rows, cols, seed)
}

/// Deterministic pseudo-random parameter pool (`count` vectors of length
/// `dim`) for the diff-engine benches.
pub fn bench_pool(count: usize, dim: usize, seed: u64) -> Vec<Vec<f64>> {
    (0..count)
        .map(|p| bench_matrix(1, dim, seed.wrapping_add(p as u64).wrapping_mul(7919)).into_vec())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use blinkml_core::diff_engine::DiffEngine;
    use blinkml_core::grads::Grads;
    use blinkml_core::models::LinearRegressionSpec;
    use blinkml_data::generators::synthetic_linear;

    #[test]
    fn no_batch_engine_matches_batched_engine() {
        let (holdout, _) = synthetic_linear(300, 5, 0.3, 1);
        let spec = LinearRegressionSpec::new(1e-3);
        let base = bench_pool(1, 6, 3).pop().unwrap();
        let pool = bench_pool(4, 6, 4);
        let batched = DiffEngine::new(&spec, &holdout, &base, &pool, &pool);
        let wrapped = NoBatch(LinearRegressionSpec::new(1e-3));
        let seq = DiffEngine::new(&wrapped, &holdout, &base, &pool, &pool);
        for i in 0..4 {
            let a = batched.diff_two_stage(i, 0.4, 0.2);
            let b = seq.diff_two_stage(i, 0.4, 0.2);
            assert!((a - b).abs() < 1e-12, "draw {i}: {a} vs {b}");
        }
    }

    #[test]
    fn sequential_second_moment_matches_parallel() {
        let m = bench_matrix(500, 8, 2);
        let seq = second_moment_seq(&m);
        let par = Grads::Dense(m).second_moment();
        assert!(seq.max_abs_diff(&par) < 1e-12);
    }
}
