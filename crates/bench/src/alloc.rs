//! A counting global allocator for allocation-budget benchmarks.
//!
//! Wraps the system allocator and counts every allocation (bytes and
//! calls) in process-wide atomics. Binaries that want allocation
//! accounting install it:
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: blinkml_bench::alloc::CountingAllocator =
//!     blinkml_bench::alloc::CountingAllocator;
//! ```
//!
//! and measure phases with [`measure`]. The counters are **cumulative
//! allocation** totals — deallocations are not subtracted — because the
//! quantity the sampling benchmarks gate on is *bytes allocated per
//! phase* (the cost of cloning samples), not peak residency.
//!
//! Counting is exact and deterministic for deterministic code, which is
//! what lets CI gate "the zero-copy path allocates strictly less than
//! the materialized path" without any noise allowance.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static BYTES: AtomicU64 = AtomicU64::new(0);
static CALLS: AtomicU64 = AtomicU64::new(0);

/// The counting allocator (see the module docs for installation).
pub struct CountingAllocator;

// SAFETY: pure pass-through to `System` plus relaxed atomic counters.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        CALLS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        CALLS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        // Count only growth: the grown tail is the newly allocated part.
        if new_size > layout.size() {
            BYTES.fetch_add((new_size - layout.size()) as u64, Ordering::Relaxed);
            CALLS.fetch_add(1, Ordering::Relaxed);
        }
        System.realloc(ptr, layout, new_size)
    }
}

/// A snapshot of the cumulative allocation counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AllocStats {
    /// Total bytes allocated (growth included, frees not subtracted).
    pub bytes: u64,
    /// Number of allocation calls.
    pub calls: u64,
}

impl AllocStats {
    /// The counter delta `self − earlier` (saturating).
    pub fn since(&self, earlier: AllocStats) -> AllocStats {
        AllocStats {
            bytes: self.bytes.saturating_sub(earlier.bytes),
            calls: self.calls.saturating_sub(earlier.calls),
        }
    }
}

/// Read the cumulative counters. Zeros unless [`CountingAllocator`] is
/// installed as the global allocator.
pub fn snapshot() -> AllocStats {
    AllocStats {
        bytes: BYTES.load(Ordering::Relaxed),
        calls: CALLS.load(Ordering::Relaxed),
    }
}

/// Run `f` and return its output plus the allocation delta it caused
/// (including allocations on other threads while it ran — keep measured
/// phases single-purpose).
pub fn measure<T>(f: impl FnOnce() -> T) -> (T, AllocStats) {
    let before = snapshot();
    let out = f();
    (out, snapshot().since(before))
}

/// `1.23 GB` / `45.6 MB` / `789 KB` / `12 B` formatting.
pub fn fmt_bytes(bytes: u64) -> String {
    const KB: f64 = 1024.0;
    let b = bytes as f64;
    if b >= KB * KB * KB {
        format!("{:.2} GB", b / (KB * KB * KB))
    } else if b >= KB * KB {
        format!("{:.1} MB", b / (KB * KB))
    } else if b >= KB {
        format!("{:.0} KB", b / KB)
    } else {
        format!("{bytes} B")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn since_is_saturating_delta() {
        let a = AllocStats {
            bytes: 10,
            calls: 2,
        };
        let b = AllocStats {
            bytes: 25,
            calls: 5,
        };
        assert_eq!(
            b.since(a),
            AllocStats {
                bytes: 15,
                calls: 3
            }
        );
        assert_eq!(a.since(b), AllocStats { bytes: 0, calls: 0 });
    }

    #[test]
    fn measure_returns_the_closure_output() {
        // Without the allocator installed the delta is zero, but the
        // plumbing must still hand the output through.
        let (v, stats) = measure(|| vec![1u8; 32].len());
        assert_eq!(v, 32);
        let _ = stats.bytes;
    }

    #[test]
    fn bytes_format() {
        assert_eq!(fmt_bytes(12), "12 B");
        assert_eq!(fmt_bytes(2048), "2 KB");
        assert_eq!(fmt_bytes(3 * 1024 * 1024 / 2), "1.5 MB");
        assert_eq!(fmt_bytes(2 * 1024 * 1024 * 1024), "2.00 GB");
    }
}
