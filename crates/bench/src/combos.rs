//! The eight (model, dataset) combinations of the paper's §5.1, behind a
//! type-erased runner so experiment binaries can sweep over all of them.

use blinkml_core::baselines::{FixedRatio, IncEstimator, RelativeRatio, SampleSizePolicy};
use blinkml_core::models::ppca::align_ppca_parameters;
use blinkml_core::models::{
    LinearRegressionSpec, LogisticRegressionSpec, MaxEntSpec, PoissonRegressionSpec, PpcaSpec,
};
use blinkml_core::{BlinkMlConfig, Coordinator, ModelClassSpec, StatisticsMethod};
use blinkml_data::generators::{
    criteo_like, gas_like, higgs_like, mnist_like, power_like, synthetic_poisson, yelp_like,
};
use blinkml_data::{Dataset, FeatureVec, Split};
use blinkml_optim::OptimOptions;
use std::time::{Duration, Instant};

/// L2 coefficient used by all paper experiments (§5.1).
pub const DEFAULT_BETA: f64 = 1e-3;

/// Number of PPCA factors used by the paper (§5.1).
pub const PPCA_FACTORS: usize = 10;

/// PPCA factors for the MNIST-like combo at harness scale.
///
/// The paper keeps `n₀ > D` for PPCA (`n₀ = 10 000 > D = 7 841`); the
/// asymptotic covariance estimate is rank-deficient — and therefore
/// overconfident — outside that regime. At this harness' `n₀ = 1 000`
/// and `d = 196`, q = 4 preserves the same inequality
/// (`D = 785 < n₀`). Recorded in EXPERIMENTS.md.
pub const PPCA_MNIST_FACTORS: usize = 4;

/// Identifier for one (model, dataset) combination.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ComboId {
    /// Linear regression on the gas-sensor stand-in.
    LinGas,
    /// Linear regression on the power-consumption stand-in.
    LinPower,
    /// Logistic regression on the sparse CTR stand-in.
    LrCriteo,
    /// Logistic regression on the HIGGS stand-in.
    LrHiggs,
    /// Max-entropy on the image stand-in.
    MeMnist,
    /// Max-entropy on the sparse review stand-in.
    MeYelp,
    /// PPCA on the image stand-in.
    PpcaMnist,
    /// PPCA on the HIGGS stand-in.
    PpcaHiggs,
    /// Poisson regression on synthetic counts (extension; not in the
    /// paper's evaluation).
    PoissonSynthetic,
}

impl ComboId {
    /// The eight combinations evaluated in the paper, in figure order.
    pub fn paper_combos() -> [ComboId; 8] {
        [
            ComboId::LinGas,
            ComboId::LrCriteo,
            ComboId::MeMnist,
            ComboId::PpcaMnist,
            ComboId::LinPower,
            ComboId::LrHiggs,
            ComboId::MeYelp,
            ComboId::PpcaHiggs,
        ]
    }

    /// Display label matching the paper's subfigure captions.
    pub fn label(&self) -> &'static str {
        match self {
            ComboId::LinGas => "Lin, Gas-like",
            ComboId::LinPower => "Lin, Power-like",
            ComboId::LrCriteo => "LR, Criteo-like",
            ComboId::LrHiggs => "LR, HIGGS-like",
            ComboId::MeMnist => "ME, MNIST-like",
            ComboId::MeYelp => "ME, Yelp-like",
            ComboId::PpcaMnist => "PPCA, MNIST-like",
            ComboId::PpcaHiggs => "PPCA, HIGGS-like",
            ComboId::PoissonSynthetic => "Poisson, synthetic",
        }
    }

    /// Whether this combo uses the PPCA accuracy sweep.
    pub fn is_ppca(&self) -> bool {
        matches!(self, ComboId::PpcaMnist | ComboId::PpcaHiggs)
    }

    /// Initial sample size actually used for a requested `n0`.
    ///
    /// Returns `requested` unchanged for every combo: a smaller `n₀`
    /// would speed up the Gram-path combos' statistics (the `n₀ × n₀`
    /// eigendecomposition dominates at harness scale) but makes the
    /// factored covariance more rank-deficient — and therefore
    /// overconfident — so the guarantee experiments take precedence.
    /// The hook remains so time-focused runs can trade calibration for
    /// speed explicitly.
    pub fn effective_n0(&self, requested: usize) -> usize {
        requested
    }

    /// The requested-accuracy sweep of Figures 5/6 for this combo.
    pub fn accuracy_sweep(&self) -> &'static [f64] {
        if self.is_ppca() {
            crate::PPCA_ACCURACY_SWEEP
        } else {
            crate::GLM_ACCURACY_SWEEP
        }
    }

    /// Build the runner at a dataset scale factor (1.0 = harness
    /// default sizes; the paper's raw N values are 1–2 orders larger and
    /// are recorded in EXPERIMENTS.md).
    pub fn make(&self, scale: f64, seed: u64) -> Box<dyn ComboRunner> {
        let n = |base: usize| ((base as f64 * scale) as usize).max(12_000);
        match self {
            ComboId::LinGas => Box::new(TypedCombo::new(
                *self,
                gas_like(n(120_000), seed),
                LinearRegressionSpec::new(DEFAULT_BETA),
                None,
            )),
            ComboId::LinPower => Box::new(TypedCombo::new(
                *self,
                power_like(n(100_000), seed),
                LinearRegressionSpec::new(DEFAULT_BETA),
                None,
            )),
            ComboId::LrCriteo => Box::new(TypedCombo::new(
                *self,
                criteo_like(n(80_000), 20_000, seed),
                LogisticRegressionSpec::new(DEFAULT_BETA),
                None,
            )),
            ComboId::LrHiggs => Box::new(TypedCombo::new(
                *self,
                higgs_like(n(150_000), 28, seed),
                LogisticRegressionSpec::new(DEFAULT_BETA),
                None,
            )),
            ComboId::MeMnist => Box::new(TypedCombo::new(
                *self,
                mnist_like(n(60_000), seed),
                MaxEntSpec::new(DEFAULT_BETA, 10),
                None,
            )),
            ComboId::MeYelp => Box::new(TypedCombo::new(
                *self,
                yelp_like(n(50_000), 10_000, seed),
                MaxEntSpec::new(DEFAULT_BETA, 5),
                None,
            )),
            ComboId::PpcaMnist => Box::new(TypedCombo::new(
                *self,
                mnist_like(n(60_000), seed),
                PpcaSpec::new(PPCA_MNIST_FACTORS),
                Some(PPCA_MNIST_FACTORS),
            )),
            // PPCA's 1 − cos metric is only meaningful when the top-q
            // eigenspace is identifiable. The flat-spectrum higgs_like
            // generator is adversarial for it (eigenvalue crossings at
            // the q-boundary are non-local changes the asymptotics
            // cannot see), so the PPCA combo draws from a rank-10
            // latent model of the same dimensionality — the structure
            // real HIGGS features have. Recorded in EXPERIMENTS.md.
            ComboId::PpcaHiggs => Box::new(TypedCombo::new(
                *self,
                blinkml_data::generators::low_rank_gaussian(
                    n(150_000),
                    28,
                    PPCA_FACTORS,
                    0.3,
                    seed,
                ),
                PpcaSpec::new(PPCA_FACTORS),
                Some(PPCA_FACTORS),
            )),
            ComboId::PoissonSynthetic => Box::new(TypedCombo::new(
                *self,
                synthetic_poisson(n(100_000), 20, seed).0,
                PoissonRegressionSpec::new(DEFAULT_BETA),
                None,
            )),
        }
    }
}

/// Metadata of one BlinkML (or baseline) run.
#[derive(Debug, Clone)]
pub struct ComboRun {
    /// Final parameter vector.
    pub theta: Vec<f64>,
    /// Sample size of the returned model.
    pub sample_size: usize,
    /// Total wall-clock time of the run.
    pub elapsed: Duration,
    /// Phase breakdown (zeroed for baselines without phases).
    pub initial_training: Duration,
    /// Statistics-computation time.
    pub statistics: Duration,
    /// Accuracy-estimation + sample-size-search time.
    pub search: Duration,
    /// Final-model training time.
    pub final_training: Duration,
    /// Whether the initial model satisfied the contract.
    pub used_initial: bool,
    /// Optimizer iterations of the returned model.
    pub iterations: usize,
}

/// A trained full model and its cost.
#[derive(Debug, Clone)]
pub struct FullModelInfo {
    /// Full-model parameters.
    pub theta: Vec<f64>,
    /// Wall-clock training time.
    pub elapsed: Duration,
    /// Optimizer iterations.
    pub iterations: usize,
}

/// Type-erased interface over one (model, dataset) combination.
pub trait ComboRunner: Send {
    /// The combo's identifier.
    fn id(&self) -> ComboId;

    /// Training-pool size `N`.
    fn train_len(&self) -> usize;

    /// Feature dimension `d`.
    fn dim(&self) -> usize;

    /// Train (and cache) the full model.
    fn train_full(&mut self) -> FullModelInfo;

    /// The cached full model, if already trained.
    fn full_model(&self) -> Option<&FullModelInfo>;

    /// Run BlinkML end-to-end for a requested accuracy.
    fn run_blinkml(&self, epsilon: f64, delta: f64, n0: usize, k: usize, seed: u64) -> ComboRun;

    /// Run one of the §5.4 baselines ("fixed", "relative", "inc").
    fn run_policy(&self, policy: &str, epsilon: f64, delta: f64, k: usize, seed: u64) -> ComboRun;

    /// Accuracy of `theta` against the cached full model on the test
    /// set: `1 − v` (PPCA parameters are aligned first).
    fn actual_accuracy(&self, theta: &[f64]) -> f64;

    /// Generalization error of `theta` on the test set.
    fn test_error(&self, theta: &[f64]) -> f64;
}

/// Generic implementation of [`ComboRunner`].
struct TypedCombo<F: FeatureVec, S: ModelClassSpec<F>> {
    id: ComboId,
    spec: S,
    split: Split<F>,
    full: Option<FullModelInfo>,
    ppca_factors: Option<usize>,
}

/// Holdout/test sizes used by every combo.
const HOLDOUT_SIZE: usize = 2_000;
const TEST_SIZE: usize = 3_000;

impl<F: FeatureVec, S: ModelClassSpec<F>> TypedCombo<F, S> {
    fn new(id: ComboId, data: Dataset<F>, spec: S, ppca_factors: Option<usize>) -> Self {
        let split = data.split(HOLDOUT_SIZE, TEST_SIZE, 0xB11A);
        TypedCombo {
            id,
            spec,
            split,
            full: None,
            ppca_factors,
        }
    }

    fn config(&self, epsilon: f64, delta: f64, n0: usize, k: usize) -> BlinkMlConfig {
        BlinkMlConfig {
            epsilon,
            delta,
            initial_sample_size: n0,
            holdout_size: HOLDOUT_SIZE,
            num_param_samples: k,
            statistics_method: StatisticsMethod::ObservedFisher,
            spectral: Default::default(),
            sampling: Default::default(),
            optim: OptimOptions::default(),
            estimate_final_accuracy: false,
            exec: Default::default(),
        }
    }
}

impl<F: FeatureVec, S: ModelClassSpec<F>> ComboRunner for TypedCombo<F, S> {
    fn id(&self) -> ComboId {
        self.id
    }

    fn train_len(&self) -> usize {
        self.split.train.len()
    }

    fn dim(&self) -> usize {
        self.split.train.dim()
    }

    fn train_full(&mut self) -> FullModelInfo {
        if let Some(full) = &self.full {
            return full.clone();
        }
        let t = Instant::now();
        let model = self
            .spec
            .train(&self.split.train, None, &OptimOptions::default())
            .expect("full-model training failed");
        let info = FullModelInfo {
            elapsed: t.elapsed(),
            iterations: model.iterations,
            theta: model.into_parameters(),
        };
        self.full = Some(info.clone());
        info
    }

    fn full_model(&self) -> Option<&FullModelInfo> {
        self.full.as_ref()
    }

    fn run_blinkml(&self, epsilon: f64, delta: f64, n0: usize, k: usize, seed: u64) -> ComboRun {
        let config = self.config(epsilon, delta, n0, k);
        let t = Instant::now();
        let outcome = Coordinator::new(config)
            .train_with_holdout(&self.spec, &self.split.train, &self.split.holdout, seed)
            .expect("blinkml run failed");
        let elapsed = t.elapsed();
        ComboRun {
            sample_size: outcome.sample_size,
            elapsed,
            initial_training: outcome.phases.initial_training,
            statistics: outcome.phases.statistics,
            search: outcome.phases.sample_size_search,
            final_training: outcome.phases.final_training,
            used_initial: outcome.used_initial_model,
            iterations: outcome.model.iterations,
            theta: outcome.model.into_parameters(),
        }
    }

    fn run_policy(&self, policy: &str, epsilon: f64, delta: f64, k: usize, seed: u64) -> ComboRun {
        let config = self.config(epsilon, delta, 1_000, k);
        let outcome = match policy {
            "fixed" => FixedRatio::default().run(
                &self.spec,
                &self.split.train,
                &self.split.holdout,
                &config,
                seed,
            ),
            "relative" => RelativeRatio.run(
                &self.spec,
                &self.split.train,
                &self.split.holdout,
                &config,
                seed,
            ),
            // Statistics capped at the coordinator's n₀ so the per-
            // iteration eigendecomposition stays tractable on this
            // machine (see IncEstimator::stats_sample_cap).
            "inc" => IncEstimator {
                base: 1_000,
                stats_sample_cap: 1_000,
            }
            .run(
                &self.spec,
                &self.split.train,
                &self.split.holdout,
                &config,
                seed,
            ),
            other => panic!("unknown policy '{other}'"),
        }
        .expect("baseline run failed");
        ComboRun {
            sample_size: outcome.sample_size,
            elapsed: outcome.elapsed,
            initial_training: Duration::ZERO,
            statistics: Duration::ZERO,
            search: Duration::ZERO,
            final_training: Duration::ZERO,
            used_initial: false,
            iterations: outcome.model.iterations,
            theta: outcome.model.into_parameters(),
        }
    }

    fn actual_accuracy(&self, theta: &[f64]) -> f64 {
        let full = self
            .full
            .as_ref()
            .expect("train_full must be called before actual_accuracy");
        let v = if let Some(q) = self.ppca_factors {
            let d = self.dim();
            let aligned = align_ppca_parameters(&full.theta, theta, d, q);
            self.spec.diff(&full.theta, &aligned, &self.split.test)
        } else {
            self.spec.diff(&full.theta, theta, &self.split.test)
        };
        1.0 - v
    }

    fn test_error(&self, theta: &[f64]) -> f64 {
        self.spec.generalization_error(theta, &self.split.test)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn combo_labels_and_sweeps() {
        for id in ComboId::paper_combos() {
            assert!(!id.label().is_empty());
            assert!(!id.accuracy_sweep().is_empty());
        }
        assert!(ComboId::PpcaMnist.is_ppca());
        assert!(!ComboId::LrHiggs.is_ppca());
    }

    #[test]
    fn small_combo_runs_end_to_end() {
        // Tiny scale so the test stays fast; exercises the full pipeline.
        let mut combo = ComboId::LrHiggs.make(0.1, 1);
        assert!(combo.train_len() > 5_000);
        assert_eq!(combo.dim(), 28);
        let full = combo.train_full();
        assert!(!full.theta.is_empty());
        let run = combo.run_blinkml(0.2, 0.05, 300, 32, 2);
        let acc = combo.actual_accuracy(&run.theta);
        assert!(acc > 0.8, "accuracy {acc} vs requested 0.8");
        let err = combo.test_error(&run.theta);
        assert!((0.0..=1.0).contains(&err));
    }

    #[test]
    fn baseline_policies_run() {
        let combo = ComboId::LrHiggs.make(0.1, 3);
        for policy in ["fixed", "relative"] {
            let run = combo.run_policy(policy, 0.1, 0.05, 16, 4);
            assert!(run.sample_size > 0);
        }
    }
}
