//! Record the fused hyperparameter-sweep engine baseline to
//! `results/BENCH_sweep.json`.
//!
//! The acceptance shape is the paper's hyperparameter-search workload
//! (§5.7) under one `(ε, δ)` contract: a log-spaced L2 grid over dense
//! logistic regression at N=50k / D=100. Two arms walk the same grid:
//!
//! * **looped** — one independent `Session::train` per λ (per-λ
//!   sessions are pre-built outside the timed region, so the arm pays
//!   only the per-λ training path, not pool-matrix rebuilds),
//! * **fused** — one `Session::sweep` call: shared pilot capture,
//!   lockstep multi-λ objective rounds, one stacked scorer GEMM, one
//!   nested final capture.
//!
//! The recorder asserts the sweep's exactness contract before timing
//! anything: under the default `ExactReplay` policy every grid point's
//! θ, ε₀, ε̂ (by `f64::to_bits`) and chosen `n` equal the looped arm's.
//! A `PathFollow` row (neighbor warm starts, not bit-reproducible) is
//! recorded alongside for the full run.
//!
//! `mode=smoke` shrinks the shape, gates fused ≥ 1.0× looped, and skips
//! the JSON (the CI smoke job uses it).
//!
//! Usage:
//! `cargo run --release -p blinkml-bench --bin sweep_baseline -- \
//!  [mode=full|smoke] [n=50000] [dim=100] [grid=20] [epsilon=0.02] \
//!  [n0=1000] [holdout=2000] [reps=5] [seed=1]`

use blinkml_bench::{fmt_duration, paired_min_times, BenchArgs, Table};
use blinkml_core::models::LogisticRegressionSpec;
use blinkml_core::{
    BlinkMlConfig, ExecConfig, Session, SweepPlan, TrainingOutcome, WarmStartPolicy,
};
use blinkml_data::generators::synthetic_logistic;
use blinkml_prob::split_seed;
use serde_json::json;

/// Log-spaced descending λ grid over [1e-6, 1e0].
fn lambda_grid(points: usize) -> Vec<f64> {
    assert!(points >= 2, "grid needs at least two points");
    (0..points)
        .map(|i| 10f64.powf(-6.0 * i as f64 / (points - 1) as f64))
        .collect()
}

fn assert_bit_equal(lambda: f64, fused: &TrainingOutcome, looped: &TrainingOutcome) {
    assert_eq!(
        fused.sample_size, looped.sample_size,
        "λ={lambda}: chosen n diverged"
    );
    assert_eq!(
        fused.initial_epsilon.to_bits(),
        looped.initial_epsilon.to_bits(),
        "λ={lambda}: ε₀ diverged"
    );
    assert_eq!(
        fused.estimated_epsilon.to_bits(),
        looped.estimated_epsilon.to_bits(),
        "λ={lambda}: ε̂ diverged"
    );
    assert_eq!(
        fused.model.parameters().len(),
        looped.model.parameters().len()
    );
    for (a, b) in fused
        .model
        .parameters()
        .iter()
        .zip(looped.model.parameters())
    {
        assert_eq!(a.to_bits(), b.to_bits(), "λ={lambda}: θ diverged");
    }
}

fn main() {
    let args = BenchArgs::parse(&[
        "mode", "n", "dim", "grid", "epsilon", "n0", "holdout", "reps", "seed",
    ]);
    let mode = args.get_str("mode", "full");
    let smoke = mode == "smoke";
    assert!(
        smoke || mode == "full",
        "mode must be 'full' or 'smoke', got '{mode}'"
    );
    // The smoke shape must be large enough that the fused engine's
    // structural savings (one pilot/final capture instead of K, one
    // stacked scorer GEMM, chunk-resident multi-λ probe rounds) clear
    // measurement noise: at D=100 the per-λ final captures the looped
    // arm pays are ~10 MB each, which the fused arm's single nested
    // capture amortizes across the whole grid.
    let (def_n, def_d, def_grid, def_n0, def_hold, def_reps) = if smoke {
        (20_000, 100, 12, 800, 1_500, 2)
    } else {
        (50_000, 100, 20, 1_000, 2_000, 5)
    };
    let n = args.get_usize("n", def_n);
    let dim = args.get_usize("dim", def_d);
    let grid_points = args.get_usize("grid", def_grid);
    let epsilon = args.get_f64("epsilon", 0.02);
    let n0 = args.get_usize("n0", def_n0);
    let holdout = args.get_usize("holdout", def_hold);
    let reps = args.get_usize("reps", def_reps);
    let seed = args.get_u64("seed", 1);

    let (data, _) = synthetic_logistic(n, dim, 2.0, seed);
    let split = data.split(holdout, 0, split_seed(seed, 100));
    let lambdas = lambda_grid(grid_points);
    let config = BlinkMlConfig {
        epsilon,
        delta: 0.05,
        initial_sample_size: n0,
        holdout_size: holdout,
        num_param_samples: 32,
        exec: ExecConfig::default(),
        ..BlinkMlConfig::default()
    };

    println!(
        "# Sweep engine baseline — N={n}, D={dim}, {grid_points}-point λ grid, ε={epsilon} \
         ({} mode)",
        if smoke { "smoke" } else { "full" }
    );

    // Per-λ sessions for the looped arm, built once outside the timed
    // region: the looped baseline pays the per-λ training path (pilot,
    // statistics, scorer, search, final fit per grid point), not
    // pool-matrix rebuilds.
    let solo_specs: Vec<LogisticRegressionSpec> = lambdas
        .iter()
        .map(|&l| LogisticRegressionSpec::new(l))
        .collect();
    let solo_sessions: Vec<Session<'_, _, _>> = solo_specs
        .iter()
        .map(|spec| {
            Session::new(config.clone(), spec, &split.train, &split.holdout).expect("solo session")
        })
        .collect();
    let run_looped = || -> Vec<TrainingOutcome> {
        solo_sessions
            .iter()
            .map(|s| {
                // Sweeps bypass the pilot cache; clear it here so every
                // rep of the looped arm retrains its pilots too.
                s.clear_pilot_cache();
                s.train(epsilon, 0.05, seed).expect("looped train")
            })
            .collect()
    };

    let base_spec = LogisticRegressionSpec::new(1e-3);
    let sweep_session = Session::new(config.clone(), &base_spec, &split.train, &split.holdout)
        .expect("sweep session");
    let run_fused = || {
        sweep_session
            .sweep(&lambdas, epsilon, 0.05, seed)
            .expect("fused sweep")
    };

    // --- Exactness gate before any timing. ---
    let looped = run_looped();
    let fused = run_fused();
    assert!(fused.fused, "dense logistic sweep must take the fused path");
    assert_eq!(fused.points.len(), looped.len());
    for (point, solo) in fused.points.iter().zip(&looped) {
        assert_bit_equal(point.lambda, &point.outcome, solo);
    }
    let finals_trained = fused
        .points
        .iter()
        .filter(|p| !p.outcome.used_initial_model)
        .count();

    // --- Timing: interleaved minimum over reps. ---
    let (t_looped, t_fused) = paired_min_times(reps, run_looped, run_fused);
    let speedup = t_looped.as_secs_f64() / t_fused.as_secs_f64().max(1e-12);

    // --- Path-following arm (not bit-reproducible; recorded for the
    //     warm-start ablation). ---
    let pf_plan = SweepPlan::new(lambdas.clone(), epsilon, 0.05, seed)
        .with_warm_start(WarmStartPolicy::PathFollow);
    let pf = sweep_session
        .sweep_plan(&pf_plan)
        .expect("path-follow sweep");
    let (_, t_pf) = paired_min_times(reps.min(2), run_looped, || {
        sweep_session
            .sweep_plan(&pf_plan)
            .expect("path-follow sweep")
    });
    let pf_speedup = t_looped.as_secs_f64() / t_pf.as_secs_f64().max(1e-12);

    let mut table = Table::new(
        "λ-grid sweep: looped sessions vs fused engine",
        &["Arm", "Wall", "Speedup", "Bit-equal", "Warm starts"],
    );
    table.row(&[
        "looped Session::train".into(),
        fmt_duration(t_looped),
        "1.00x".into(),
        "—".into(),
        "—".into(),
    ]);
    table.row(&[
        "fused sweep (ExactReplay)".into(),
        fmt_duration(t_fused),
        format!("{speedup:.2}x"),
        "yes (gated)".into(),
        "0 (replay)".into(),
    ]);
    table.row(&[
        "fused sweep (PathFollow)".into(),
        fmt_duration(t_pf),
        format!("{pf_speedup:.2}x"),
        "no (by design)".into(),
        format!(
            "{} taken / {} rejected",
            pf.warm_starts_taken, pf.warm_starts_rejected
        ),
    ]);
    table.print();
    println!(
        "\ngrid: {grid_points} points in [1e-6, 1], {finals_trained} final fits, \
         chosen n range {}..{}",
        fused
            .points
            .iter()
            .map(|p| p.outcome.sample_size)
            .min()
            .unwrap_or(0),
        fused
            .points
            .iter()
            .map(|p| p.outcome.sample_size)
            .max()
            .unwrap_or(0),
    );

    if smoke {
        assert!(
            speedup >= 1.0,
            "smoke gate: fused sweep slower than looped sessions ({speedup:.2}x)"
        );
        println!("\nsmoke mode: skipping results/BENCH_sweep.json");
        return;
    }

    let shape = json!({
        "n": n,
        "dim": dim,
        "grid_points": grid_points,
        "epsilon": epsilon,
        "n0": n0,
        "holdout": holdout,
    });
    let exact_replay = json!({
        "looped_ms": t_looped.as_secs_f64() * 1e3,
        "fused_ms": t_fused.as_secs_f64() * 1e3,
        "speedup": speedup,
        "bit_equal": true,
    });
    let path_follow = json!({
        "fused_ms": t_pf.as_secs_f64() * 1e3,
        "speedup": pf_speedup,
        "warm_starts_taken": pf.warm_starts_taken,
        "warm_starts_rejected": pf.warm_starts_rejected,
        "bit_equal": false,
    });
    let doc = json!({
        "bench": "sweep",
        "reps": reps,
        "seed": seed,
        "threads": blinkml_data::parallel::max_threads(),
        "note": "speedup is memory-traffic bound: on hosts whose last-level \
                 cache holds the whole design matrix the fused win reduces to \
                 shared captures + stacked scoring; DRAM-bound hosts see more",
        "shape": shape,
        "finals_trained": finals_trained,
        "exact_replay": exact_replay,
        "path_follow": path_follow,
    });
    let path = blinkml_bench::report::write_baseline("BENCH_sweep.json", &doc);
    println!("\nwrote {}", path.display());
}
