//! Record the durability baseline to `results/BENCH_durability.json`.
//!
//! Three experiments over the ingest WAL:
//!
//! * **Ingest overhead per sync policy** — the end-to-end ingest
//!   pipeline (parse one CSV block from memory, validate it, admit
//!   it) against an in-memory [`StreamingPool`] versus durable pools
//!   under each [`SyncPolicy`] (`OsManaged`, `EveryN(8)`, `Always`),
//!   reported as rows/s, min over reps. Rows arrive as text because
//!   that is what the repo's loaders ingest; both arms run the
//!   identical pipeline and only the pool differs, so the ratio
//!   isolates what durability costs a real ingest path. Gate (both
//!   modes): `OsManaged` stays within **1.2×** of the in-memory wall
//!   clock — with fsync left to the OS, the WAL's encode + checksum +
//!   write must stay a minor tax on ingest, not a second pipeline.
//! * **Replay throughput** — [`StreamingPool::open`] on the snapshot
//!   plus the full append log, reported as replayed rows/s, min over
//!   reps. Gate (both modes): the recovered pool is **bit-exactly**
//!   the live pool — every row of every epoch, label and feature bits
//!   compared with [`f64::to_bits`].
//! * **Compaction** — one `compact()` (snapshot + log truncate) and a
//!   reopen of the compacted image, which must again be bit-exact.
//!
//! Usage:
//! `cargo run --release -p blinkml-bench --bin durability_baseline -- \
//!  [mode=full|smoke] [n=20000] [dim=16] [holdout=2000] [blocks=8] \
//!  [block_rows=1000] [reps=5] [seed=1]`

use blinkml_bench::{fmt_duration, time_it, BenchArgs, Table};
use blinkml_data::generators::synthetic_logistic;
use blinkml_data::{
    Dataset, DenseVec, DurableOptions, IngestPolicy, LabelDomain, StreamingPool, SyncPolicy,
};
use blinkml_prob::split_seed;
use serde_json::json;
use std::path::PathBuf;
use std::time::Duration;

/// `OsManaged` appends may cost at most this factor over in-memory.
const OS_MANAGED_GATE: f64 = 1.2;

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "blinkml_durability_bench_{}_{tag}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Every row of both datasets equal down to the f64 bit pattern.
fn rows_bit_equal(a: &Dataset<DenseVec>, b: &Dataset<DenseVec>) -> bool {
    a.len() == b.len()
        && a.dim() == b.dim()
        && a.examples().iter().zip(b.examples()).all(|(ra, rb)| {
            ra.y.to_bits() == rb.y.to_bits()
                && ra
                    .x
                    .0
                    .iter()
                    .zip(&rb.x.0)
                    .all(|(x, y)| x.to_bits() == y.to_bits())
        })
}

/// Assert the recovered pool is bit-exactly the live pool at every
/// retained epoch — the replay bitwise gate.
fn assert_bit_exact(recovered: &StreamingPool<DenseVec>, live: &StreamingPool<DenseVec>) {
    assert_eq!(recovered.epoch(), live.epoch(), "replay lost an epoch");
    assert_eq!(recovered.marks(), live.marks(), "replay bent the ledger");
    let (r, l) = (recovered.snapshot(), live.snapshot());
    assert!(
        rows_bit_equal(&r.train_dataset(), &l.train_dataset()),
        "replayed train rows diverged bitwise"
    );
    assert!(
        rows_bit_equal(&r.holdout_dataset(), &l.holdout_dataset()),
        "replayed holdout rows diverged bitwise"
    );
}

fn main() {
    let args = BenchArgs::parse(&[
        "mode",
        "n",
        "dim",
        "holdout",
        "blocks",
        "block_rows",
        "reps",
        "seed",
    ]);
    let mode = args.get_str("mode", "full");
    let smoke = mode == "smoke";
    assert!(
        smoke || mode == "full",
        "mode must be 'full' or 'smoke', got '{mode}'"
    );
    let n = args.get_usize("n", if smoke { 4_000 } else { 20_000 });
    let dim = args.get_usize("dim", if smoke { 8 } else { 16 });
    let holdout = args.get_usize("holdout", if smoke { 400 } else { 2_000 });
    // Smoke keeps the pool small but not the appends: blocks much
    // under ~1k rows shrink the timed region to where per-append
    // fixed costs and timer noise swamp the ratio the gate checks.
    let blocks = args.get_usize("blocks", if smoke { 4 } else { 8 });
    let block_rows = args.get_usize("block_rows", 1_000);
    let reps = args.get_usize("reps", 5);
    let seed = args.get_u64("seed", 1);

    let (data, _) = synthetic_logistic(n, dim, 2.0, split_seed(seed, 1));
    let split = data.split(holdout, 0, split_seed(seed, 11));
    let appended_rows = blocks * block_rows;

    // Arrival buffers: one CSV block each, label first. `{}` prints
    // the shortest roundtrip representation, so the parse is bit-exact
    // and the replay gate below stays meaningful.
    let csv_blocks: Vec<Vec<u8>> = (0..blocks)
        .map(|b| {
            let (block, _) =
                synthetic_logistic(block_rows, dim, 2.0, split_seed(seed, 100 + b as u64));
            let mut buf = Vec::new();
            blinkml_data::io::write_csv(&block, &mut buf).expect("serialize block");
            buf
        })
        .collect();

    // The timed ingest pipeline: parse one arrived CSV block, then
    // admit it. Identical in both arms — only the pool's durability
    // differs.
    let ingest_blocks = |pool: &StreamingPool<DenseVec>| {
        for csv in &csv_blocks {
            let block = blinkml_data::io::read_csv(csv.as_slice(), 0).expect("parse block");
            pool.append(block.into_examples()).expect("valid block");
        }
    };

    // --- Ingest overhead: in-memory vs each sync policy. ---
    let mut t_memory = Duration::MAX;
    for _ in 0..reps {
        let pool = StreamingPool::from_datasets(
            &split.train,
            &split.holdout,
            LabelDomain::Binary01,
            IngestPolicy::Reject,
        )
        .expect("seed rows are valid");
        let (_, t) = time_it(|| ingest_blocks(&pool));
        t_memory = t_memory.min(t);
    }

    let policies: [(&str, SyncPolicy); 3] = [
        ("os_managed", SyncPolicy::OsManaged),
        ("every_8", SyncPolicy::EveryN(8)),
        ("always", SyncPolicy::Always),
    ];
    let mut policy_times: Vec<(&str, Duration)> = Vec::new();
    for (label, sync) in policies {
        let mut best = Duration::MAX;
        for rep in 0..reps {
            let dir = scratch(&format!("append_{label}_{rep}"));
            let pool = StreamingPool::create_durable(
                &dir,
                "durability-bench",
                dim,
                split.train.examples().to_vec(),
                split.holdout.examples().to_vec(),
                LabelDomain::Binary01,
                IngestPolicy::Reject,
                DurableOptions {
                    sync,
                    compact_every: None,
                },
            )
            .expect("create durable pool");
            let (_, t) = time_it(|| ingest_blocks(&pool));
            assert_eq!(pool.epoch(), blocks as u64, "one epoch per block");
            best = best.min(t);
            drop(pool);
            let _ = std::fs::remove_dir_all(&dir);
        }
        policy_times.push((label, best));
    }
    let rows_per_sec = |t: Duration| appended_rows as f64 / t.as_secs_f64().max(1e-12);
    let os_managed_overhead = policy_times[0].1.as_secs_f64() / t_memory.as_secs_f64().max(1e-12);
    assert!(
        os_managed_overhead <= OS_MANAGED_GATE,
        "OsManaged append overhead {os_managed_overhead:.3}x exceeds the \
         {OS_MANAGED_GATE}x gate ({} vs {} in-memory)",
        fmt_duration(policy_times[0].1),
        fmt_duration(t_memory),
    );

    // --- Replay throughput + bitwise gate. ---
    let replay_dir = scratch("replay");
    let live = StreamingPool::create_durable(
        &replay_dir,
        "durability-bench",
        dim,
        split.train.examples().to_vec(),
        split.holdout.examples().to_vec(),
        LabelDomain::Binary01,
        IngestPolicy::Reject,
        DurableOptions {
            sync: SyncPolicy::OsManaged,
            compact_every: None,
        },
    )
    .expect("create durable pool");
    ingest_blocks(&live);
    live.sync().expect("settle the log");
    let mut t_replay = Duration::MAX;
    for _ in 0..reps {
        let (recovered, t) = time_it(|| {
            StreamingPool::<DenseVec>::open(&replay_dir, DurableOptions::default())
                .expect("replay the log")
        });
        assert_bit_exact(&recovered, &live);
        t_replay = t_replay.min(t);
    }
    let replay_rows_per_sec = appended_rows as f64 / t_replay.as_secs_f64().max(1e-12);

    // --- Compaction: snapshot + truncate, then a bit-exact reopen. ---
    let log_before = live.wal_len();
    let (_, t_compact) = time_it(|| live.compact().expect("compact"));
    assert_eq!(live.wal_len(), 0, "compaction must truncate the log");
    let reopened = StreamingPool::<DenseVec>::open(&replay_dir, DurableOptions::default())
        .expect("reopen the compacted image");
    assert_bit_exact(&reopened, &live);
    let _ = std::fs::remove_dir_all(&replay_dir);

    // --- Report. ---
    let mut table = Table::new(
        format!(
            "Durability baseline: {blocks} blocks × {block_rows} rows onto a \
             {n}-row pool (dim {dim})"
        ),
        &["metric", "value"],
    );
    table.row(&[
        "in-memory append".into(),
        format!("{:.0} rows/s", rows_per_sec(t_memory)),
    ]);
    for (label, t) in &policy_times {
        table.row(&[
            format!("durable append ({label})"),
            format!("{:.0} rows/s", rows_per_sec(*t)),
        ]);
    }
    table.row(&[
        "os_managed overhead".into(),
        format!("{os_managed_overhead:.3}x (gate {OS_MANAGED_GATE}x)"),
    ]);
    table.row(&[
        "replay".into(),
        format!(
            "{replay_rows_per_sec:.0} rows/s ({})",
            fmt_duration(t_replay)
        ),
    ]);
    table.row(&[
        "compaction".into(),
        format!(
            "{} ({log_before} log bytes folded)",
            fmt_duration(t_compact)
        ),
    ]);
    table.print();
    println!("\nreplayed and compacted states bit-exact; append gate held");

    if smoke {
        println!("\nsmoke mode: skipping results/BENCH_durability.json");
        return;
    }

    let shape = json!({
        "n": n,
        "dim": dim,
        "holdout": holdout,
        "blocks": blocks,
        "block_rows": block_rows,
        "reps": reps,
    });
    let append = json!({
        "rows_appended": appended_rows,
        "in_memory_rows_per_sec": rows_per_sec(t_memory),
        "os_managed_rows_per_sec": rows_per_sec(policy_times[0].1),
        "every_8_rows_per_sec": rows_per_sec(policy_times[1].1),
        "always_rows_per_sec": rows_per_sec(policy_times[2].1),
        "os_managed_overhead": os_managed_overhead,
        "gate": OS_MANAGED_GATE,
    });
    let replay = json!({
        "rows_replayed": appended_rows,
        "best_ms": t_replay.as_secs_f64() * 1e3,
        "rows_per_sec": replay_rows_per_sec,
        "bit_exact": true,
    });
    let compaction = json!({
        "compact_ms": t_compact.as_secs_f64() * 1e3,
        "log_bytes_folded": log_before,
        "reopen_bit_exact": true,
    });
    let doc = json!({
        "bench": "durability",
        "seed": seed,
        "threads": blinkml_data::parallel::max_threads(),
        "shape": shape,
        "append": append,
        "replay": replay,
        "compaction": compaction,
    });
    let path = blinkml_bench::report::write_baseline("BENCH_durability.json", &doc);
    println!("\nwrote {}", path.display());
}
