//! Record the resilience-layer baseline to
//! `results/BENCH_resilience.json`.
//!
//! Two experiments:
//!
//! * **Unloaded overhead pair** — the same fresh-pilot query timed as a
//!   cold serial [`Coordinator`] run (no cancellation token anywhere)
//!   against a 1-worker [`Server`] carrying a generous armed deadline
//!   (token installed, stop-check polled every optimizer iteration).
//!   Min-over-reps on both sides, paired interleaved ordering. Gates:
//!   the served response is **bit-identical** to the cold run on the
//!   [`Full`] rung, and in full mode the armed-token path costs at most
//!   **2%** over the cold path.
//! * **Overload run** — a burst against a small bounded queue under
//!   [`ShedPolicy::Degrade`] with a mixed deadline population (none /
//!   generous / tight). Records p50/p99 submit-to-completion latency,
//!   the shed rate, the degraded-rung histogram, retry and reject
//!   counters — and asserts the exactly-once reconciliation
//!   `submitted == completed + failed` at quiescence.
//!
//! Usage:
//! `cargo run --release -p blinkml-bench --bin resilience_baseline -- \
//!  [mode=full|smoke] [n=30000] [dim=20] [n0=1000] [holdout=2000] \
//!  [queries=192] [workers=2] [queue=8] [reps=5] [seed=1]`
//!
//! [`Full`]: DegradationRung::Full

use blinkml_bench::report::paired_min_times;
use blinkml_bench::{fmt_duration, BenchArgs, Table};
use blinkml_core::models::LogisticRegressionSpec;
use blinkml_core::serve::{DatasetShard, Query, ServeError, Server};
use blinkml_core::{
    BlinkMlConfig, Coordinator, DegradationRung, ServeConfig, ShedPolicy, TrainingOutcome,
};
use blinkml_data::generators::synthetic_logistic;
use blinkml_prob::split_seed;
use serde_json::json;
use std::time::Duration;

fn percentile(sorted: &[Duration], p: f64) -> Duration {
    let idx = ((sorted.len() as f64 * p) as usize).min(sorted.len() - 1);
    sorted[idx]
}

fn assert_bitwise(context: &str, served: &TrainingOutcome, oracle: &TrainingOutcome) {
    assert_eq!(
        served.sample_size, oracle.sample_size,
        "{context}: chosen n"
    );
    assert_eq!(
        served.initial_epsilon.to_bits(),
        oracle.initial_epsilon.to_bits(),
        "{context}: ε₀"
    );
    assert_eq!(
        served.estimated_epsilon.to_bits(),
        oracle.estimated_epsilon.to_bits(),
        "{context}: ε̂"
    );
    assert_eq!(
        served.model.parameters(),
        oracle.model.parameters(),
        "{context}: θ"
    );
}

fn main() {
    let args = BenchArgs::parse(&[
        "mode", "n", "dim", "n0", "holdout", "queries", "workers", "queue", "reps", "seed",
    ]);
    let mode = args.get_str("mode", "full");
    let smoke = mode == "smoke";
    assert!(
        smoke || mode == "full",
        "mode must be 'full' or 'smoke', got '{mode}'"
    );
    let (def_n, def_q) = if smoke { (8_000, 48) } else { (30_000, 192) };
    let n = args.get_usize("n", def_n);
    let dim = args.get_usize("dim", if smoke { 8 } else { 20 });
    let n0 = args.get_usize("n0", if smoke { 400 } else { 1_000 });
    let holdout = args.get_usize("holdout", if smoke { 800 } else { 2_000 });
    let num_queries = args.get_usize("queries", def_q);
    let workers = args.get_usize("workers", 2);
    let queue = args.get_usize("queue", 8);
    let reps = args.get_usize("reps", if smoke { 3 } else { 5 });
    let seed = args.get_u64("seed", 1);

    let base = BlinkMlConfig {
        epsilon: 0.10,
        delta: 0.05,
        initial_sample_size: n0,
        holdout_size: holdout,
        num_param_samples: 32,
        ..BlinkMlConfig::default()
    };
    let (data, _) = synthetic_logistic(n, dim, 2.0, split_seed(seed, 1));
    let split = data.split(holdout, 0, split_seed(seed, 11));
    let shard = DatasetShard::new(1, split.train, split.holdout);

    // --- Unloaded overhead pair: cold coordinator (no token) vs a
    // 1-worker server with a generous armed deadline. Fresh seeds per
    // rep keep both sides cold (no pilot-cache assist on either). ---
    let server = Server::spawn(
        base.clone(),
        ServeConfig {
            workers: 1,
            ..ServeConfig::default()
        },
        LogisticRegressionSpec::new(1e-3),
        vec![shard.clone()],
    )
    .expect("spawn unloaded server");
    let deadline = Duration::from_secs(3600);

    // One paired correctness pass first: the served response under an
    // armed-but-untripped token must be bit-identical to the cold run.
    let probe = Query::new(1, 0.10, 0.05, 900);
    let cold_outcome = Coordinator::new(base.clone())
        .train_with_holdout(
            &LogisticRegressionSpec::new(1e-3),
            &shard.train,
            &shard.holdout,
            probe.seed,
        )
        .expect("cold probe");
    let served_probe = server
        .query(probe.with_deadline(deadline))
        .expect("served probe");
    assert_eq!(
        served_probe.rung,
        DegradationRung::Full,
        "an untripped deadline must not degrade"
    );
    assert_bitwise("unloaded probe", &served_probe.outcome, &cold_outcome);

    let mut cold_seed = 1_000u64;
    let mut served_seed = 1_000u64;
    let (t_cold, t_served) = paired_min_times(
        reps,
        || {
            let s = cold_seed;
            cold_seed += 1;
            Coordinator::new(base.clone())
                .train_with_holdout(
                    &LogisticRegressionSpec::new(1e-3),
                    &shard.train,
                    &shard.holdout,
                    s,
                )
                .expect("cold run")
        },
        || {
            let s = served_seed;
            served_seed += 1;
            server
                .query(Query::new(1, 0.10, 0.05, s).with_deadline(deadline))
                .expect("served run")
        },
    );
    server.shutdown();
    let overhead = t_served.as_secs_f64() / t_cold.as_secs_f64().max(1e-12);
    if !smoke {
        assert!(
            overhead <= 1.02,
            "cancellation-check overhead on the unloaded path must stay \
             within 2% (served {} vs cold {}, ratio {overhead:.4})",
            fmt_duration(t_served),
            fmt_duration(t_cold),
        );
    }

    // --- Overload run: burst a mixed deadline population at a small
    // bounded queue under the Degrade shed policy. ---
    let server = Server::spawn(
        base.clone(),
        ServeConfig {
            workers,
            queue_capacity: queue,
            shed_policy: ShedPolicy::Degrade,
            retry_budget: 1,
            ..ServeConfig::default()
        },
        LogisticRegressionSpec::new(1e-3),
        vec![shard.clone()],
    )
    .expect("spawn overload server");

    // Deadline mix over the stream: a third unbounded, a third generous
    // (never trips), a third tight (trips mid-workflow on most
    // machines — exercised as load, not asserted on). Arrivals are
    // paced faster than the service rate so the queue stays saturated
    // without collapsing into a single instantaneous burst; ε targets
    // reach low enough that shed (pilot-only) queries land on a
    // degraded rung instead of being satisfied by the pilot.
    let epsilons = [0.20, 0.10, 0.05, 0.03];
    let pacing = Duration::from_millis(if smoke { 1 } else { 2 });
    let mut accepted = Vec::new();
    let mut queue_rejected = 0u64;
    for i in 0..num_queries as u64 {
        let q = Query::new(1, epsilons[(i % 4) as usize], 0.05, i % 8);
        let q = match i % 3 {
            0 => q,
            1 => q.with_deadline(Duration::from_secs(600)),
            _ => q.with_deadline(Duration::from_millis(40)),
        };
        match server.submit(q) {
            Ok(handle) => accepted.push(handle),
            Err(ServeError::QueueFull { .. }) => queue_rejected += 1,
            Err(e) => panic!("unexpected admission error: {e:?}"),
        }
        std::thread::sleep(pacing);
    }
    let mut latencies = Vec::with_capacity(accepted.len());
    let mut rungs = [0u64; 3]; // Full, RelaxedFinal, Pilot
    let mut failed = 0u64;
    for handle in accepted {
        match handle.wait() {
            Ok(response) => {
                latencies.push(response.latency);
                rungs[match response.rung {
                    DegradationRung::Full => 0,
                    DegradationRung::RelaxedFinal => 1,
                    DegradationRung::Pilot => 2,
                    // Static shards never take the streaming drift path.
                    DegradationRung::StalePilot => unreachable!("no streams in this bench"),
                }] += 1;
            }
            Err(ServeError::DeadlineExceeded) => failed += 1,
            Err(e) => panic!("unexpected serving error: {e:?}"),
        }
    }
    let stats = server.stats();
    server.shutdown();
    assert_eq!(
        stats.submitted,
        stats.completed + stats.failed,
        "exactly-once reconciliation must hold at quiescence"
    );
    assert_eq!(stats.failed, failed, "only deadline fail-fasts may fail");
    assert_eq!(stats.queue_full_rejects, queue_rejected);
    assert_eq!(stats.inflight, 0, "no leaked in-flight entries");
    latencies.sort();
    let (p50, p99) = if latencies.is_empty() {
        (Duration::ZERO, Duration::ZERO)
    } else {
        (percentile(&latencies, 0.50), percentile(&latencies, 0.99))
    };
    let shed_rate = stats.sheds as f64 / stats.submitted.max(1) as f64;

    // --- Report. ---
    let mut table = Table::new(
        format!(
            "Resilience baseline: {num_queries} queries burst at a \
             capacity-{queue} queue, {workers} workers, Degrade shed"
        ),
        &["metric", "value"],
    );
    table.row(&["cold path (no token)".into(), fmt_duration(t_cold)]);
    table.row(&["served path (armed token)".into(), fmt_duration(t_served)]);
    table.row(&["unloaded overhead".into(), format!("{overhead:.4}x")]);
    table.row(&["p50 latency (overload)".into(), fmt_duration(p50)]);
    table.row(&["p99 latency (overload)".into(), fmt_duration(p99)]);
    table.row(&["accepted".into(), stats.submitted.to_string()]);
    table.row(&["queue-full rejects".into(), queue_rejected.to_string()]);
    table.row(&["sheds".into(), stats.sheds.to_string()]);
    table.row(&["shed rate".into(), format!("{shed_rate:.3}")]);
    table.row(&["rung: full".into(), rungs[0].to_string()]);
    table.row(&["rung: relaxed-final".into(), rungs[1].to_string()]);
    table.row(&["rung: pilot".into(), rungs[2].to_string()]);
    table.row(&[
        "deadline-degraded".into(),
        stats.deadline_degraded.to_string(),
    ]);
    table.row(&["retries".into(), stats.retries.to_string()]);
    table.row(&["deadline fail-fasts".into(), failed.to_string()]);
    table.print();
    println!(
        "\nunloaded path: bit-identical to the cold coordinator on the \
         full rung; armed-token overhead {overhead:.4}x",
    );

    if smoke {
        println!("\nsmoke mode: skipping results/BENCH_resilience.json");
        return;
    }

    let shape = json!({
        "n": n,
        "dim": dim,
        "n0": n0,
        "holdout": holdout,
        "queries": num_queries,
        "workers": workers,
        "queue_capacity": queue,
        "reps": reps,
        "epsilons": epsilons.to_vec(),
    });
    let unloaded = json!({
        "cold_ms": t_cold.as_secs_f64() * 1e3,
        "served_ms": t_served.as_secs_f64() * 1e3,
        "overhead_ratio": overhead,
        "bit_identical_to_oracle": true,
    });
    let overload = json!({
        "p50_ms": p50.as_secs_f64() * 1e3,
        "p99_ms": p99.as_secs_f64() * 1e3,
        "accepted": stats.submitted,
        "completed": stats.completed,
        "failed": stats.failed,
        "queue_full_rejects": queue_rejected,
        "sheds": stats.sheds,
        "shed_rate": shed_rate,
        "deadline_degraded": stats.deadline_degraded,
        "retries": stats.retries,
        "rung_full": rungs[0],
        "rung_relaxed_final": rungs[1],
        "rung_pilot": rungs[2],
    });
    let doc = json!({
        "bench": "resilience",
        "seed": seed,
        "threads": blinkml_data::parallel::max_threads(),
        "shape": shape,
        "unloaded": unloaded,
        "overload": overload,
    });
    let path = blinkml_bench::report::write_baseline("BENCH_resilience.json", &doc);
    println!("\nwrote {}", path.display());
}
