//! Extension experiment (not in the paper's evaluation): the paper
//! names Poisson regression as a supported GLM (§1, §2.2) but never
//! evaluates it. This binary runs the Figure 5/6 protocol on a
//! well-specified Poisson workload, validating that the generic
//! machinery — ObservedFisher, accuracy estimation, sample-size search —
//! carries over to a non-Gaussian, non-Bernoulli likelihood unchanged.
//!
//! Usage:
//! `cargo run --release -p blinkml-bench --bin ext_poisson -- [scale=1.0] [reps=5] [n0=1000] [k=100] [seed=1]`

use blinkml_bench::{combos::ComboId, fmt_duration, BenchArgs, Table};
use blinkml_prob::quantile::summary;

fn main() {
    let args = BenchArgs::parse(&["scale", "reps", "n0", "k", "seed"]);
    let scale = args.get_f64("scale", 1.0);
    let reps = args.get_usize("reps", 5);
    let n0 = args.get_usize("n0", 1_000);
    let k = args.get_usize("k", 100);
    let seed = args.get_u64("seed", 1);

    let id = ComboId::PoissonSynthetic;
    println!("# Extension — Poisson regression through the Fig 5/6 protocol (scale={scale}, reps={reps})");
    let mut combo = id.make(scale, seed);
    let full = combo.train_full();
    println!(
        "{}: N = {}, d = {}, full-model training = {} ({} iters)",
        id.label(),
        combo.train_len(),
        combo.dim(),
        fmt_duration(full.elapsed),
        full.iterations
    );

    let mut table = Table::new(
        "Poisson: speedup and guarantee vs requested accuracy",
        &[
            "Requested",
            "Median Time",
            "Ratio",
            "Sample Size",
            "Actual Mean",
            "Actual Min",
        ],
    );
    for &accuracy in &[0.80, 0.90, 0.95, 0.98, 0.99] {
        let epsilon = 1.0 - accuracy;
        let mut times = Vec::with_capacity(reps);
        let mut sizes = Vec::with_capacity(reps);
        let mut actuals = Vec::with_capacity(reps);
        for rep in 0..reps {
            let run = combo.run_blinkml(epsilon, 0.05, n0, k, seed + 53 * rep as u64);
            times.push(run.elapsed.as_secs_f64());
            sizes.push(run.sample_size);
            actuals.push(combo.actual_accuracy(&run.theta));
        }
        times.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        sizes.sort_unstable();
        let median_t = times[times.len() / 2];
        let (mean, lo, _) = summary(&actuals, 0.05, 0.95);
        table.row(&[
            format!("{:.0}%", accuracy * 100.0),
            format!("{median_t:.3} s"),
            format!("{:.1}%", 100.0 * median_t / full.elapsed.as_secs_f64()),
            format!("{}", sizes[sizes.len() / 2]),
            format!("{:.2}%", mean * 100.0),
            format!("{:.2}%", lo * 100.0),
        ]);
        blinkml_bench::report::append_result(
            "ext_poisson",
            &serde_json::json!({
                "requested_accuracy": accuracy,
                "median_time_s": median_t,
                "full_time_s": full.elapsed.as_secs_f64(),
                "median_sample_size": sizes[sizes.len() / 2],
                "actual_mean": mean,
                "actual_min": lo,
            }),
        );
    }
    table.print();
}
