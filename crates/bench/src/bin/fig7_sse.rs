//! Figure 7 / Tables 6–7: Sample Size Estimator vs baselines.
//!
//! Compares BlinkML's sample-size estimation against the paper's three
//! baselines — FixedRatio (1%), RelativeRatio ((1−ε)·10%), and
//! IncEstimator (grow n = base·k² until certified) — on the (Lin,
//! Power-like) and (LR, Criteo-like) combinations: actual accuracy
//! (Table 6) and runtime including BlinkML's pure training time
//! (Table 7).
//!
//! Usage:
//! `cargo run --release -p blinkml-bench --bin fig7_sse -- [scale=1.0] [reps=3] [n0=1000] [k=100] [seed=1]`

use blinkml_bench::{combos::ComboId, BenchArgs, Table};

fn main() {
    let args = BenchArgs::parse(&["scale", "reps", "n0", "k", "seed"]);
    let scale = args.get_f64("scale", 1.0);
    let reps = args.get_usize("reps", 3);
    let n0 = args.get_usize("n0", 1_000);
    let k = args.get_usize("k", 100);
    let seed = args.get_u64("seed", 1);
    let accuracies = [0.80, 0.85, 0.90, 0.95, 0.96, 0.97, 0.98, 0.99];

    println!("# Figure 7 / Tables 6-7 — sample size estimation (scale={scale}, reps={reps})");
    for id in [ComboId::LinPower, ComboId::LrCriteo] {
        let mut combo = id.make(scale, seed);
        combo.train_full();
        let mut acc_table = Table::new(
            format!("{} — actual accuracy by policy (Table 6)", id.label()),
            &[
                "Requested",
                "FixedRatio",
                "RelativeRatio",
                "IncEstimator",
                "BlinkML",
            ],
        );
        let mut time_table = Table::new(
            format!("{} — runtime by policy (Table 7)", id.label()),
            &[
                "Requested",
                "FixedRatio",
                "RelativeRatio",
                "IncEstimator",
                "BlinkML",
                "BlinkML pure training",
            ],
        );
        for &accuracy in &accuracies {
            let epsilon = 1.0 - accuracy;
            let mut acc = [0.0f64; 4];
            let mut time = [0.0f64; 4];
            let mut pure_training = 0.0f64;
            for rep in 0..reps {
                let rep_seed = seed + 101 * rep as u64;
                for (slot, policy) in ["fixed", "relative", "inc"].iter().enumerate() {
                    let run = combo.run_policy(policy, epsilon, 0.05, k, rep_seed);
                    acc[slot] += combo.actual_accuracy(&run.theta);
                    time[slot] += run.elapsed.as_secs_f64();
                }
                let run = combo.run_blinkml(epsilon, 0.05, n0, k, rep_seed);
                acc[3] += combo.actual_accuracy(&run.theta);
                time[3] += run.elapsed.as_secs_f64();
                pure_training += (run.initial_training + run.final_training).as_secs_f64();
            }
            let r = reps as f64;
            acc_table.row(&[
                format!("{:.0}%", accuracy * 100.0),
                format!("{:.2}%", acc[0] / r * 100.0),
                format!("{:.2}%", acc[1] / r * 100.0),
                format!("{:.2}%", acc[2] / r * 100.0),
                format!("{:.2}%", acc[3] / r * 100.0),
            ]);
            time_table.row(&[
                format!("{:.0}%", accuracy * 100.0),
                format!("{:.2} s", time[0] / r),
                format!("{:.2} s", time[1] / r),
                format!("{:.2} s", time[2] / r),
                format!("{:.2} s", time[3] / r),
                format!("{:.2} s", pure_training / r),
            ]);
            blinkml_bench::report::append_result(
                "fig7_sse",
                &serde_json::json!({
                    "combo": id.label(),
                    "requested_accuracy": accuracy,
                    "acc_fixed": acc[0] / r, "acc_relative": acc[1] / r,
                    "acc_inc": acc[2] / r, "acc_blinkml": acc[3] / r,
                    "time_fixed_s": time[0] / r, "time_relative_s": time[1] / r,
                    "time_inc_s": time[2] / r, "time_blinkml_s": time[3] / r,
                    "time_blinkml_pure_s": pure_training / r,
                }),
            );
        }
        acc_table.print();
        time_table.print();
    }
}
