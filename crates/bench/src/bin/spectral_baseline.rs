//! Record the spectral-engine perf baseline to
//! `results/BENCH_spectral.json`.
//!
//! Times the ObservedFisher statistics phase with the dense
//! (`tred2`/`tql2` over the materialized second moment) and truncated
//! randomized (matrix-free subspace iteration) engines, then runs the
//! accuracy and sample-size estimators with both factors and records the
//! estimated ε and chosen n side by side, so the speedup is reported *at
//! matched estimate quality*.
//!
//! Usage:
//! `cargo run --release -p blinkml-bench --bin spectral_baseline -- \
//!  [mode=full|smoke] [n=5000] [dim=1000] [decay=0.85] [rank=64] \
//!  [oversample=16] [power=1] [tol=1e-6] [reps=3] [holdout=2000] \
//!  [pool=64] [beta=0.01] [epsilon=0.05] [seed=1]`
//!
//! `mode=smoke` shrinks the shapes and prints the table without writing
//! the JSON (the CI smoke job uses it).

use blinkml_bench::{fmt_duration, paired_min_times, BenchArgs, Table};
use blinkml_core::models::LinearRegressionSpec;
use blinkml_core::stats::{observed_fisher, observed_fisher_spectral, ModelStatistics};
use blinkml_core::{ModelAccuracyEstimator, ModelClassSpec, SampleSizeEstimator, SpectralMethod};
use blinkml_data::generators::synthetic_linear_decay;
use blinkml_optim::OptimOptions;
use blinkml_prob::split_seed;
use serde_json::json;

fn main() {
    let args = BenchArgs::parse(&[
        "mode",
        "n",
        "dim",
        "decay",
        "rank",
        "oversample",
        "power",
        "tol",
        "reps",
        "holdout",
        "pool",
        "beta",
        "epsilon",
        "seed",
    ]);
    let mode = args.get_str("mode", "full");
    let smoke = mode == "smoke";
    assert!(
        smoke || mode == "full",
        "mode must be 'full' or 'smoke', got '{mode}'"
    );
    let (def_n, def_d, def_rank, def_hold, def_pool) = if smoke {
        (600, 64, 16, 400, 16)
    } else {
        (5_000, 1_000, 64, 2_000, 256)
    };
    let n = args.get_usize("n", def_n);
    let dim = args.get_usize("dim", def_d);
    let decay = args.get_f64("decay", 0.85);
    let rank = args.get_usize("rank", def_rank);
    let oversample = args.get_usize("oversample", 16);
    let power_iters = args.get_usize("power", 1);
    let tol = args.get_f64("tol", 1e-6);
    let reps = args.get_usize("reps", if smoke { 1 } else { 3 });
    let holdout_size = args.get_usize("holdout", def_hold);
    let pool_k = args.get_usize("pool", def_pool);
    let beta = args.get_f64("beta", 1e-2);
    // Tighter than the initial model's ε̂, so the sample-size search
    // genuinely runs and the two engines' chosen n can disagree.
    let epsilon = args.get_f64("epsilon", 0.02);
    let seed = args.get_u64("seed", 1);
    // Notional sampling-pool size N for the α = 1/n − 1/N scaling and
    // the sample-size search interval.
    let full_n = 20 * n;
    let randomized = SpectralMethod::Randomized {
        rank,
        oversample,
        power_iters,
        tol,
    };

    let (data, _) = synthetic_linear_decay(n + holdout_size, dim, decay, 0.5, seed);
    let split = data.split(holdout_size, 0, split_seed(seed, 0));
    let spec = LinearRegressionSpec::new(beta);
    let model = spec
        .train(&split.train, None, &OptimOptions::default())
        .expect("train initial model");
    let theta = model.parameters();

    // The statistics phase, both engines, measured as an interleaved
    // order-alternating pair (same methodology as pipeline_baseline).
    let (dense_time, rand_time) = paired_min_times(
        reps,
        || observed_fisher(&spec, theta, &split.train).unwrap(),
        || observed_fisher_spectral(&spec, theta, &split.train, randomized).unwrap(),
    );
    let stats_dense = observed_fisher(&spec, theta, &split.train).unwrap();
    let stats_rand = observed_fisher_spectral(&spec, theta, &split.train, randomized).unwrap();
    let speedup = dense_time.as_secs_f64() / rand_time.as_secs_f64().max(1e-12);

    // Matched estimate quality: ε, chosen n, and the marginal-variance
    // profile must agree between the two factors.
    let quality = |stats: &ModelStatistics| -> (f64, usize) {
        let acc = ModelAccuracyEstimator::new(pool_k);
        let eps = acc.estimate(
            &spec,
            theta,
            stats,
            n,
            full_n,
            &split.holdout,
            0.05,
            split_seed(seed, 1),
        );
        let sse = SampleSizeEstimator::new(pool_k);
        let est = sse.estimate(
            &spec,
            theta,
            stats,
            n,
            full_n,
            &split.holdout,
            epsilon,
            0.05,
            split_seed(seed, 2),
        );
        (eps, est.n)
    };
    let (eps_dense, n_dense) = quality(&stats_dense);
    let (eps_rand, n_rand) = quality(&stats_rand);
    let eps_rel = (eps_dense - eps_rand).abs() / eps_dense.max(1e-12);
    let n_rel = (n_dense as f64 - n_rand as f64).abs() / (n_dense as f64).max(1.0);
    let mv_dense = stats_dense.marginal_variances();
    let mv_rand = stats_rand.marginal_variances();
    let mv_scale = mv_dense.iter().cloned().fold(0.0f64, f64::max).max(1e-300);
    let mv_rel = mv_dense
        .iter()
        .zip(&mv_rand)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f64, f64::max)
        / mv_scale;

    let mut table = Table::new(
        format!(
            "ObservedFisher statistics phase: dense vs randomized \
             (n={n} D={} decay={decay} reps={reps})",
            stats_dense.dim()
        ),
        &["engine", "time", "rank", "ε̂", "chosen n"],
    );
    table.row(&[
        "dense".into(),
        fmt_duration(dense_time),
        format!("{}", stats_dense.rank()),
        format!("{eps_dense:.4}"),
        format!("{n_dense}"),
    ]);
    table.row(&[
        "randomized".into(),
        fmt_duration(rand_time),
        format!("{}", stats_rand.rank()),
        format!("{eps_rand:.4}"),
        format!("{n_rand}"),
    ]);
    table.print();
    println!(
        "\nspeedup {speedup:.2}x · ε rel diff {eps_rel:.4} · n rel diff {n_rel:.4} · \
         marginal-variance rel err {mv_rel:.2e}"
    );

    if smoke {
        println!("\nsmoke mode: skipping results/BENCH_spectral.json");
        return;
    }

    let shape = json!({
        "n": n,
        "dim": stats_dense.dim(),
        "decay": decay,
        "holdout": holdout_size,
        "pool": pool_k,
        "beta": beta,
        "epsilon": epsilon,
        "full_n": full_n,
    });
    let knobs = json!({
        "rank": rank,
        "oversample": oversample,
        "power_iters": power_iters,
        "tol": tol,
    });
    let statistics_phase = json!({
        "dense_ms": dense_time.as_secs_f64() * 1e3,
        "randomized_ms": rand_time.as_secs_f64() * 1e3,
        "speedup": speedup,
        "dense_rank": stats_dense.rank(),
        "randomized_rank": stats_rand.rank(),
    });
    let estimate_quality = json!({
        "eps_dense": eps_dense,
        "eps_randomized": eps_rand,
        "eps_rel_diff": eps_rel,
        "n_dense": n_dense,
        "n_randomized": n_rand,
        "n_rel_diff": n_rel,
        "marginal_variance_rel_err": mv_rel,
    });
    let doc = json!({
        "bench": "spectral",
        "reps": reps,
        "seed": seed,
        "threads": blinkml_data::parallel::max_threads(),
        "shape": shape,
        "knobs": knobs,
        "statistics_phase": statistics_phase,
        "estimate_quality": estimate_quality,
    });
    let path = blinkml_bench::report::write_baseline("BENCH_spectral.json", &doc);
    println!("\nwrote {}", path.display());
}
