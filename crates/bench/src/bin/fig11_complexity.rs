//! Figure 11: model complexity vs estimated sample size.
//!
//! * **11a** — sweep the L2 coefficient β at fixed dimension: stronger
//!   regularization makes the model stiffer, so the estimated minimum
//!   sample size should *decrease* with β.
//! * **11b** — sweep the number of parameters at fixed β: more
//!   parameters need larger samples.
//!
//! Both report the Sample Size Estimator's output directly (no model is
//! trained beyond the initial one, mirroring §5.8).
//!
//! Usage:
//! `cargo run --release -p blinkml-bench --bin fig11_complexity -- [n=200000] [n0=1000] [k=100] [accuracy=0.95] [seed=1] [betas=0,1e-4,1e-3,1e-2,1e-1,10] [dims=100,500,1000,5000,10000,50000]`

use blinkml_bench::{BenchArgs, Table};
use blinkml_core::models::LogisticRegressionSpec;
use blinkml_core::stats::observed_fisher;
use blinkml_core::{ModelClassSpec, SampleSizeEstimator};
use blinkml_data::generators::criteo_like;
use blinkml_optim::OptimOptions;

fn main() {
    let args = BenchArgs::parse(&["n", "n0", "k", "accuracy", "seed", "betas", "dims"]);
    let n = args.get_usize("n", 200_000);
    let n0 = args.get_usize("n0", 1_000);
    let k = args.get_usize("k", 100);
    let accuracy = args.get_f64("accuracy", 0.95);
    let seed = args.get_u64("seed", 1);
    let betas: Vec<f64> = args
        .get_str("betas", "0,1e-4,1e-3,1e-2,1e-1,10")
        .split(',')
        .map(|s| s.trim().parse().expect("betas must be numbers"))
        .collect();
    let dims: Vec<usize> = args
        .get_str("dims", "100,500,1000,5000,10000,50000")
        .split(',')
        .map(|s| s.trim().parse().expect("dims must be integers"))
        .collect();
    let epsilon = 1.0 - accuracy;

    println!(
        "# Figure 11 — model complexity vs estimated sample size (N={n}, accuracy={accuracy})"
    );

    // 11a: regularization sweep at a fixed moderate dimension.
    let fixed_d = 2_000;
    let data = criteo_like(n, fixed_d, seed);
    let split = data.split(2_000, 0, 0xF11);
    let mut reg_table = Table::new(
        format!("Estimated sample size vs regularization (d = {fixed_d})"),
        &["Beta", "Estimated n", "Probes"],
    );
    for &beta in &betas {
        let spec = LogisticRegressionSpec::new(beta);
        let d0 = split.train.sample(n0, seed + 1);
        // Unregularized logistic regression has no finite MLE on
        // separable data — which a p > n sparse sample typically is.
        // Report the divergence instead of crashing the sweep.
        let m0 = match spec.train(&d0, None, &OptimOptions::default()) {
            Ok(m) => m,
            Err(e) => {
                reg_table.row(&[
                    format!("{beta:.0e}"),
                    "diverged (separable, no finite MLE)".into(),
                    "-".into(),
                ]);
                eprintln!("beta = {beta:.0e}: {e}");
                continue;
            }
        };
        // A degenerate fit (e.g. β = 0 on separable data stopped at the
        // precision floor) can defeat the statistics computation too.
        let stats = match observed_fisher(&spec, m0.parameters(), &d0) {
            Ok(s) => s,
            Err(e) => {
                reg_table.row(&[
                    format!("{beta:.0e}"),
                    "degenerate fit (statistics failed)".into(),
                    "-".into(),
                ]);
                eprintln!("beta = {beta:.0e}: {e}");
                continue;
            }
        };
        let est = SampleSizeEstimator::new(k).estimate(
            &spec,
            m0.parameters(),
            &stats,
            n0,
            split.train.len(),
            &split.holdout,
            epsilon,
            0.05,
            seed + 2,
        );
        reg_table.row(&[
            format!("{beta:.0e}"),
            format!("{}", est.n),
            format!("{}", est.probes),
        ]);
        blinkml_bench::report::append_result(
            "fig11a_regularization",
            &serde_json::json!({
                "beta": beta, "estimated_n": est.n, "N": split.train.len(),
                "accuracy": accuracy, "d": fixed_d,
            }),
        );
    }
    reg_table.print();

    // 11b: parameter-count sweep at the paper's fixed β.
    let mut dim_table = Table::new(
        "Estimated sample size vs number of parameters (beta = 1e-3)",
        &["Features", "Estimated n", "Probes"],
    );
    for &d in &dims {
        let data = criteo_like(n, d, seed + 3);
        let split = data.split(2_000, 0, 0xF12);
        let spec = LogisticRegressionSpec::new(1e-3);
        let d0 = split.train.sample(n0, seed + 4);
        let m0 = spec
            .train(&d0, None, &OptimOptions::default())
            .expect("initial training failed");
        let stats = observed_fisher(&spec, m0.parameters(), &d0).expect("stats");
        let est = SampleSizeEstimator::new(k).estimate(
            &spec,
            m0.parameters(),
            &stats,
            n0,
            split.train.len(),
            &split.holdout,
            epsilon,
            0.05,
            seed + 5,
        );
        dim_table.row(&[
            format!("{d}"),
            format!("{}", est.n),
            format!("{}", est.probes),
        ]);
        blinkml_bench::report::append_result(
            "fig11b_parameters",
            &serde_json::json!({
                "d": d, "estimated_n": est.n, "N": split.train.len(),
                "accuracy": accuracy,
            }),
        );
    }
    dim_table.print();
}
