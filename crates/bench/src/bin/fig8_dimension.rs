//! Figure 8 / Tables 8–9: impact of the number of features.
//!
//! Sweeps the feature dimension of the sparse CTR workload and reports,
//! per dimension: (a) BlinkML's phase-time breakdown vs full training
//! (Table 8), (b) generalization errors of the full model, the BlinkML
//! model, and the Lemma-1 predicted bound (Table 9 left), and (c) the
//! optimizer iteration counts (Table 9 right).
//!
//! Usage:
//! `cargo run --release -p blinkml-bench --bin fig8_dimension -- [n=60000] [n0=1000] [k=100] [accuracy=0.95] [seed=1] [dims=100,500,1000,5000,10000,50000]`

use blinkml_bench::{fmt_duration, BenchArgs, Table};
use blinkml_core::models::LogisticRegressionSpec;
use blinkml_core::{BlinkMlConfig, Coordinator, ModelClassSpec, StatisticsMethod};
use blinkml_data::generators::criteo_like;
use blinkml_optim::OptimOptions;
use std::time::Instant;

fn main() {
    let args = BenchArgs::parse(&["n", "n0", "k", "accuracy", "seed", "dims"]);
    let n = args.get_usize("n", 60_000);
    let n0 = args.get_usize("n0", 1_000);
    let k = args.get_usize("k", 100);
    let accuracy = args.get_f64("accuracy", 0.95);
    let seed = args.get_u64("seed", 1);
    let dims: Vec<usize> = args
        .get_str("dims", "100,500,1000,5000,10000,50000")
        .split(',')
        .map(|s| s.trim().parse().expect("dims must be integers"))
        .collect();
    let epsilon = 1.0 - accuracy;

    println!(
        "# Figure 8 / Tables 8-9 — feature-dimension sweep (N={n}, n0={n0}, accuracy={accuracy})"
    );
    let mut overhead = Table::new(
        "Runtime breakdown (Table 8)",
        &[
            "Features",
            "Initial Train",
            "Statistics",
            "Size Search",
            "Final Train",
            "Full Train",
            "Ratio",
        ],
    );
    let mut gen_err = Table::new(
        "Generalization error (Table 9, left)",
        &["Features", "Full Training", "BlinkML", "Predicted Bound"],
    );
    let mut iters = Table::new(
        "Optimizer iterations (Table 9, right)",
        &["Features", "Full Training", "BlinkML"],
    );

    for &d in &dims {
        let data = criteo_like(n, d, seed);
        let split = data.split(2_000, 3_000, 0xF18);
        let spec = LogisticRegressionSpec::new(1e-3);

        let t = Instant::now();
        let full = spec
            .train(&split.train, None, &OptimOptions::default())
            .expect("full training failed");
        let full_time = t.elapsed();

        let config = BlinkMlConfig {
            epsilon,
            delta: 0.05,
            initial_sample_size: n0,
            holdout_size: 2_000,
            num_param_samples: k,
            statistics_method: StatisticsMethod::ObservedFisher,
            spectral: Default::default(),
            sampling: Default::default(),
            optim: OptimOptions::default(),
            estimate_final_accuracy: false,
            exec: Default::default(),
        };
        let t = Instant::now();
        let outcome = Coordinator::new(config)
            .train_with_holdout(&spec, &split.train, &split.holdout, seed + 7)
            .expect("blinkml failed");
        let blinkml_time = t.elapsed();

        let ratio = blinkml_time.as_secs_f64() / full_time.as_secs_f64();
        overhead.row(&[
            format!("{d}"),
            fmt_duration(outcome.phases.initial_training),
            fmt_duration(outcome.phases.statistics),
            fmt_duration(outcome.phases.sample_size_search),
            fmt_duration(outcome.phases.final_training),
            fmt_duration(full_time),
            format!("{:.2}%", ratio * 100.0),
        ]);

        let full_err = spec.generalization_error(full.parameters(), &split.test);
        let approx_err = spec.generalization_error(outcome.model.parameters(), &split.test);
        // Lemma 1: the full model's error is bounded by ε_g + ε − ε_g·ε
        // where ε_g is the approximate model's error.
        let bound = outcome.full_model_error_bound(approx_err);
        gen_err.row(&[
            format!("{d}"),
            format!("{:.2}%", full_err * 100.0),
            format!("{:.2}%", approx_err * 100.0),
            format!("{:.2}%", bound * 100.0),
        ]);
        iters.row(&[
            format!("{d}"),
            format!("{}", full.iterations),
            format!("{}", outcome.model.iterations),
        ]);
        blinkml_bench::report::append_result(
            "fig8_dimension",
            &serde_json::json!({
                "features": d,
                "initial_train_s": outcome.phases.initial_training.as_secs_f64(),
                "statistics_s": outcome.phases.statistics.as_secs_f64(),
                "search_s": outcome.phases.sample_size_search.as_secs_f64(),
                "final_train_s": outcome.phases.final_training.as_secs_f64(),
                "full_train_s": full_time.as_secs_f64(),
                "ratio": ratio,
                "sample_size": outcome.sample_size,
                "full_gen_error": full_err,
                "blinkml_gen_error": approx_err,
                "predicted_bound": bound,
                "bound_holds": full_err <= bound,
                "full_iterations": full.iterations,
                "blinkml_iterations": outcome.model.iterations,
            }),
        );
    }
    overhead.print();
    gen_err.print();
    iters.print();
}
