//! Record the multi-tenant serving-layer baseline to
//! `results/BENCH_serving.json`.
//!
//! Drives the [`Server`] with a Zipf-distributed query mix over
//! `(dataset version, ε, seed)` archetypes — the skew a real serving
//! deployment sees, where a few (dataset, pilot) combinations absorb
//! most traffic and the pilot cache earns its keep — and records:
//!
//! * **throughput and latency**: queries/second plus p50/p99
//!   submit-to-completion latency as stamped by the server,
//! * **cache effectiveness**: pilot trains vs cache hits vs coalesced
//!   waits under the mix,
//! * the **cold vs warm pilot pair**: a fresh-key query (leads a pilot
//!   train + statistics) against the same query repeated (cache hit),
//!   min-over-reps on both sides.
//!
//! Two gates hold in every mode:
//!
//! * **bit-identity** — one served response per distinct archetype is
//!   compared bitwise (θ, ε₀, ε̂, chosen n) against a serial
//!   fresh-coordinator oracle,
//! * **warm strictly faster than cold** — the cached-pilot hit path
//!   must beat the cold path, since it skips pilot training and the
//!   statistics phase entirely.
//!
//! Usage:
//! `cargo run --release -p blinkml-bench --bin serving_baseline -- \
//!  [mode=full|smoke] [n=30000] [dim=20] [n0=1000] [holdout=2000] \
//!  [queries=256] [workers=4] [zipf=1.1] [reps=3] [seed=1]`

use blinkml_bench::{fmt_duration, BenchArgs, Table};
use blinkml_core::models::LogisticRegressionSpec;
use blinkml_core::serve::{DatasetShard, Query, Server};
use blinkml_core::{BlinkMlConfig, Coordinator, ServeConfig, TrainingOutcome};
use blinkml_data::generators::synthetic_logistic;
use blinkml_data::DenseVec;
use blinkml_prob::split_seed;
use serde_json::json;
use std::time::{Duration, Instant};

/// xorshift64* — the bench's deterministic query-mix sampler.
struct XorShift(u64);

impl XorShift {
    fn new(seed: u64) -> Self {
        XorShift(seed.wrapping_mul(0x9E3779B97F4A7C15) | 1)
    }
    fn next_u64(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0.wrapping_mul(0x2545F4914F6CDD1D)
    }
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Sample `count` archetype indices from a Zipf(`s`) law over ranks
/// `1..=k` (cumulative-weight inversion; rank 0 is the hottest).
fn zipf_mix(k: usize, s: f64, count: usize, rng: &mut XorShift) -> Vec<usize> {
    let weights: Vec<f64> = (1..=k).map(|r| 1.0 / (r as f64).powf(s)).collect();
    let total: f64 = weights.iter().sum();
    (0..count)
        .map(|_| {
            let mut u = rng.next_f64() * total;
            for (i, w) in weights.iter().enumerate() {
                if u < *w {
                    return i;
                }
                u -= w;
            }
            k - 1
        })
        .collect()
}

fn percentile(sorted: &[Duration], p: f64) -> Duration {
    let idx = ((sorted.len() as f64 * p) as usize).min(sorted.len() - 1);
    sorted[idx]
}

fn assert_bitwise(context: &str, served: &TrainingOutcome, oracle: &TrainingOutcome) {
    assert_eq!(
        served.sample_size, oracle.sample_size,
        "{context}: chosen n"
    );
    assert_eq!(
        served.initial_epsilon.to_bits(),
        oracle.initial_epsilon.to_bits(),
        "{context}: ε₀"
    );
    assert_eq!(
        served.estimated_epsilon.to_bits(),
        oracle.estimated_epsilon.to_bits(),
        "{context}: ε̂"
    );
    assert_eq!(
        served.model.parameters(),
        oracle.model.parameters(),
        "{context}: θ"
    );
}

fn main() {
    let args = BenchArgs::parse(&[
        "mode", "n", "dim", "n0", "holdout", "queries", "workers", "zipf", "reps", "seed",
    ]);
    let mode = args.get_str("mode", "full");
    let smoke = mode == "smoke";
    assert!(
        smoke || mode == "full",
        "mode must be 'full' or 'smoke', got '{mode}'"
    );
    let (def_n, def_q) = if smoke { (8_000, 48) } else { (30_000, 256) };
    let n = args.get_usize("n", def_n);
    let dim = args.get_usize("dim", if smoke { 8 } else { 20 });
    let n0 = args.get_usize("n0", if smoke { 400 } else { 1_000 });
    let holdout = args.get_usize("holdout", if smoke { 800 } else { 2_000 });
    let num_queries = args.get_usize("queries", def_q);
    let workers = args.get_usize("workers", 4);
    let zipf_s = args.get_f64("zipf", 1.1);
    let reps = args.get_usize("reps", 3);
    let seed = args.get_u64("seed", 1);

    let spec = LogisticRegressionSpec::new(1e-3);
    let base = BlinkMlConfig {
        epsilon: 0.10,
        delta: 0.05,
        initial_sample_size: n0,
        holdout_size: holdout,
        num_param_samples: 32,
        ..BlinkMlConfig::default()
    };

    // Two dataset versions; the query archetypes span versions × ε
    // targets × sampling seeds. Zipf rank order: archetype 0 (hot) …
    // k-1 (cold tail).
    let shards: Vec<DatasetShard<DenseVec>> = (1..=2u64)
        .map(|v| {
            let (data, _) = synthetic_logistic(n, dim, 2.0, split_seed(seed, v));
            let split = data.split(holdout, 0, split_seed(seed, 10 + v));
            DatasetShard::new(v, split.train, split.holdout)
        })
        .collect();
    let epsilons = [0.30, 0.20, 0.14, 0.10];
    let archetypes: Vec<Query> = (0..2u64)
        .flat_map(|v| {
            epsilons
                .into_iter()
                .flat_map(move |eps| (0..4u64).map(move |s| Query::new(1 + v, eps, 0.05, s)))
        })
        .collect();
    let mut rng = XorShift::new(seed);
    let mix = zipf_mix(archetypes.len(), zipf_s, num_queries, &mut rng);

    let server = Server::spawn(
        base.clone(),
        ServeConfig {
            workers,
            ..ServeConfig::default()
        },
        spec,
        shards.clone(),
    )
    .expect("spawn server");

    // --- The Zipf mix: submit everything, then drain. ---
    let wall_start = Instant::now();
    let handles: Vec<(usize, _)> = mix
        .iter()
        .map(|&a| (a, server.submit(archetypes[a]).expect("submit")))
        .collect();
    let mut latencies: Vec<Duration> = Vec::with_capacity(num_queries);
    let mut first_response: Vec<Option<TrainingOutcome>> = vec![None; archetypes.len()];
    for (a, handle) in handles {
        let served = handle.wait().expect("served response");
        latencies.push(served.latency);
        first_response[a].get_or_insert(served.outcome);
    }
    let wall = wall_start.elapsed();
    let stats = server.stats();
    assert_eq!(stats.failed, 0, "no query may fail under the mix");
    assert_eq!(stats.inflight, 0, "no leaked in-flight entries");

    latencies.sort();
    let (p50, p99) = (percentile(&latencies, 0.50), percentile(&latencies, 0.99));
    let qps = num_queries as f64 / wall.as_secs_f64().max(1e-12);

    // --- Bit-identity gate: every archetype served in the mix must
    // match a serial fresh-coordinator run exactly. ---
    let spec = LogisticRegressionSpec::new(1e-3);
    let mut checked = 0usize;
    for (a, served) in first_response.iter().enumerate() {
        let Some(served) = served else { continue };
        let q = archetypes[a];
        let mut config = base.clone();
        config.epsilon = q.epsilon;
        config.delta = q.delta;
        let oracle = Coordinator::new(config)
            .train_with_holdout(
                &spec,
                &shards[(q.dataset - 1) as usize].train,
                &shards[(q.dataset - 1) as usize].holdout,
                q.seed,
            )
            .expect("oracle run");
        assert_bitwise(&format!("archetype {a}"), served, &oracle);
        checked += 1;
    }
    assert!(checked > 0, "the mix must cover at least one archetype");

    // --- Cold vs warm pilot pair: fresh keys lead a pilot train; the
    // repeat hits the cache and skips pilot + statistics. ---
    let (mut t_cold, mut t_warm) = (Duration::MAX, Duration::MAX);
    for r in 0..reps.max(1) as u64 {
        let q = Query::new(1, 0.30, 0.05, 1_000 + r);
        let start = Instant::now();
        server.query(q).expect("cold query");
        t_cold = t_cold.min(start.elapsed());
        let start = Instant::now();
        server.query(q).expect("warm query");
        t_warm = t_warm.min(start.elapsed());
    }
    assert!(
        t_warm < t_cold,
        "cached-pilot hit path must be strictly faster than cold \
         (warm {} >= cold {})",
        fmt_duration(t_warm),
        fmt_duration(t_cold),
    );
    let final_stats = server.stats();
    server.shutdown();

    // --- Report. ---
    let mut table = Table::new(
        format!(
            "Serving baseline: {num_queries} queries, Zipf(s={zipf_s}) over \
             {} archetypes, {workers} workers",
            archetypes.len()
        ),
        &["metric", "value"],
    );
    table.row(&["throughput".into(), format!("{qps:.1} q/s")]);
    table.row(&["p50 latency".into(), fmt_duration(p50)]);
    table.row(&["p99 latency".into(), fmt_duration(p99)]);
    table.row(&["pilot trains".into(), final_stats.pilot_trains.to_string()]);
    table.row(&["cache hits".into(), final_stats.cache_hits.to_string()]);
    table.row(&[
        "coalesced waits".into(),
        final_stats.coalesced_waits.to_string(),
    ]);
    table.row(&["evictions".into(), final_stats.evictions.to_string()]);
    table.row(&["cold pilot path".into(), fmt_duration(t_cold)]);
    table.row(&["warm pilot path".into(), fmt_duration(t_warm)]);
    table.print();
    println!(
        "\nbit-identity: {checked}/{} archetypes served in the mix match the \
         serial oracle exactly; warm/cold = {:.2}x",
        archetypes.len(),
        t_cold.as_secs_f64() / t_warm.as_secs_f64().max(1e-12),
    );

    if smoke {
        println!("\nsmoke mode: skipping results/BENCH_serving.json");
        return;
    }

    let shape = json!({
        "n": n,
        "dim": dim,
        "n0": n0,
        "holdout": holdout,
        "datasets": shards.len(),
        "queries": num_queries,
        "workers": workers,
        "zipf_s": zipf_s,
        "archetypes": archetypes.len(),
        "epsilons": epsilons.to_vec(),
    });
    let latency = json!({
        "p50_ms": p50.as_secs_f64() * 1e3,
        "p99_ms": p99.as_secs_f64() * 1e3,
        "wall_ms": wall.as_secs_f64() * 1e3,
    });
    let cache = json!({
        "pilot_trains": final_stats.pilot_trains,
        "cache_hits": final_stats.cache_hits,
        "coalesced_waits": final_stats.coalesced_waits,
        "evictions": final_stats.evictions,
        "cached_pilots": final_stats.cached_pilots,
    });
    let pilot_path = json!({
        "cold_ms": t_cold.as_secs_f64() * 1e3,
        "warm_ms": t_warm.as_secs_f64() * 1e3,
        "speedup": t_cold.as_secs_f64() / t_warm.as_secs_f64().max(1e-12),
    });
    let exactness = json!({
        "archetypes_checked": checked,
        "bit_identical_to_oracle": true,
    });
    let doc = json!({
        "bench": "serving",
        "seed": seed,
        "threads": blinkml_data::parallel::max_threads(),
        "shape": shape,
        "throughput_qps": qps,
        "latency": latency,
        "cache": cache,
        "pilot_path": pilot_path,
        "exactness": exactness,
    });
    let path = blinkml_bench::report::write_baseline("BENCH_serving.json", &doc);
    println!("\nwrote {}", path.display());
}
