//! Record the streaming-ingest baseline to `results/BENCH_ingest.json`.
//!
//! Three experiments:
//!
//! * **Append throughput** — validated row blocks appended to a
//!   [`StreamingPool`] (epoch bump + mark per block), reported as
//!   rows/s, min over reps.
//! * **Incremental vs full statistics** — the pilot's Fisher
//!   second-moment maintained per appended block as a rank-k
//!   [`IncrementalSecondMoment::update`] versus a cold recompute over
//!   all rows seen so far. Reports the speedup and the worst relative
//!   Frobenius gap between the two reconstructions. Gate (both modes):
//!   the gap stays within **1e-10** under the dense spectral method,
//!   and a `verified_update` pass pins the same bound.
//! * **Drift-triggered serving** — a streaming [`Server`] with a
//!   zero-width stale band: the cold query, a fresh-reuse query after a
//!   train-only append (drift score 0), and a drift-triggered retrain
//!   after a holdout append. Latencies per rung plus the drift
//!   counters, which are asserted in both modes.
//!
//! Usage:
//! `cargo run --release -p blinkml-bench --bin ingest_baseline -- \
//!  [mode=full|smoke] [n=40000] [dim=24] [n0=1000] [holdout=2000] \
//!  [blocks=8] [block_rows=2000] [reps=5] [seed=1]`

use blinkml_bench::{fmt_duration, time_it, BenchArgs, Table};
use blinkml_core::models::LogisticRegressionSpec;
use blinkml_core::moments::rel_frobenius_gap;
use blinkml_core::serve::{Query, Server, StreamShard};
use blinkml_core::{
    BlinkMlConfig, DegradationRung, IncrementalSecondMoment, ModelClassSpec, ServeConfig,
    SpectralMethod,
};
use blinkml_data::generators::synthetic_logistic;
use blinkml_data::{Dataset, DenseVec, Example, IngestPolicy, LabelDomain, StreamingPool};
use blinkml_optim::OptimOptions;
use blinkml_prob::split_seed;
use serde_json::json;
use std::sync::Arc;
use std::time::Duration;

/// The dense-path equivalence gate for incremental Fisher maintenance.
const FROBENIUS_GATE: f64 = 1e-10;

fn block(n: usize, d: usize, seed: u64, offset: f64) -> Vec<Example<DenseVec>> {
    let (data, _) = synthetic_logistic(n, d, 2.0, seed);
    data.examples()
        .iter()
        .map(|e| Example {
            x: DenseVec::new(e.x.0.iter().map(|v| v + offset).collect()),
            y: e.y,
        })
        .collect()
}

fn main() {
    let args = BenchArgs::parse(&[
        "mode",
        "n",
        "dim",
        "n0",
        "holdout",
        "blocks",
        "block_rows",
        "reps",
        "seed",
    ]);
    let mode = args.get_str("mode", "full");
    let smoke = mode == "smoke";
    assert!(
        smoke || mode == "full",
        "mode must be 'full' or 'smoke', got '{mode}'"
    );
    let n = args.get_usize("n", if smoke { 6_000 } else { 40_000 });
    let dim = args.get_usize("dim", if smoke { 8 } else { 24 });
    let n0 = args.get_usize("n0", if smoke { 300 } else { 1_000 });
    let holdout = args.get_usize("holdout", if smoke { 600 } else { 2_000 });
    let blocks = args.get_usize("blocks", if smoke { 4 } else { 8 });
    let block_rows = args.get_usize("block_rows", if smoke { 400 } else { 2_000 });
    let reps = args.get_usize("reps", if smoke { 3 } else { 5 });
    let seed = args.get_u64("seed", 1);

    let base = BlinkMlConfig {
        epsilon: 0.10,
        delta: 0.05,
        initial_sample_size: n0,
        holdout_size: holdout,
        num_param_samples: 32,
        ..BlinkMlConfig::default()
    };
    let spec = LogisticRegressionSpec::new(1e-3);
    let (data, _) = synthetic_logistic(n, dim, 2.0, split_seed(seed, 1));
    let split = data.split(holdout, 0, split_seed(seed, 11));

    // --- Append throughput: validated blocks into a fresh pool. ---
    let append_blocks: Vec<Vec<Example<DenseVec>>> = (0..blocks)
        .map(|b| block(block_rows, dim, split_seed(seed, 100 + b as u64), 0.0))
        .collect();
    let mut t_append = Duration::MAX;
    for _ in 0..reps {
        let pool = StreamingPool::from_datasets(
            &split.train,
            &split.holdout,
            LabelDomain::Binary01,
            IngestPolicy::Reject,
        )
        .expect("seed rows are valid");
        let (_, t) = time_it(|| {
            for rows in &append_blocks {
                let receipt = pool.append(rows.clone()).expect("valid block");
                assert_eq!(receipt.accepted, block_rows);
            }
        });
        assert_eq!(pool.epoch(), blocks as u64, "one epoch per block");
        t_append = t_append.min(t);
    }
    let appended_rows = blocks * block_rows;
    let rows_per_sec = appended_rows as f64 / t_append.as_secs_f64().max(1e-12);

    // --- Incremental vs full Fisher statistics. The pilot θ is fixed
    // once (trained on the first n₀ seed rows); each appended block's
    // per-row gradients fold into the maintained eigenpairs as a rank-k
    // update, compared against a cold recompute over all rows so far. ---
    let pilot_rows: Vec<Example<DenseVec>> =
        split.train.examples()[..n0.min(split.train.len())].to_vec();
    let pilot_data = Dataset::new("pilot", dim, pilot_rows);
    let pilot = spec
        .train(&pilot_data, None, &OptimOptions::default())
        .expect("pilot fit");
    let theta = pilot.parameters().to_vec();

    let base_grads = spec.grads(&theta, &pilot_data);
    let mut seen: Vec<Example<DenseVec>> = pilot_data.examples().to_vec();
    let mut incremental =
        IncrementalSecondMoment::new(&base_grads, SpectralMethod::Dense).expect("base moment");
    let mut t_incremental = Duration::ZERO;
    let mut t_full = Duration::ZERO;
    let mut worst_gap = 0.0f64;
    for rows in &append_blocks {
        // Incremental side: gradients for the new rows only + rank-k
        // eigenpair update.
        let block_data = Dataset::new("block", dim, rows.clone());
        let (_, t) = time_it(|| {
            let g = spec.grads(&theta, &block_data);
            incremental
                .update(&g, SpectralMethod::Dense)
                .expect("rank-k update");
        });
        t_incremental += t;

        // Full side: gradients for every row seen so far + cold
        // eigendecomposition.
        seen.extend(rows.iter().cloned());
        let all_data = Dataset::new("all", dim, seen.clone());
        let (cold, t) = time_it(|| {
            let g = spec.grads(&theta, &all_data);
            IncrementalSecondMoment::new(&g, SpectralMethod::Dense).expect("cold moment")
        });
        t_full += t;

        let gap = rel_frobenius_gap(&incremental.second_moment(), &cold.second_moment());
        worst_gap = worst_gap.max(gap);
    }
    assert!(
        worst_gap <= FROBENIUS_GATE,
        "incremental Fisher maintenance drifted from the cold recompute: \
         worst relative Frobenius gap {worst_gap:.3e} > {FROBENIUS_GATE:.0e}"
    );
    let stats_speedup = t_full.as_secs_f64() / t_incremental.as_secs_f64().max(1e-12);

    // Verified-equivalence mode: every update is pinned against the
    // cold recompute and leaves the cold eigenpairs installed.
    let mut verified =
        IncrementalSecondMoment::new(&base_grads, SpectralMethod::Dense).expect("base moment");
    let mut vseen = pilot_data.examples().to_vec();
    let mut worst_verified_gap = 0.0f64;
    for rows in &append_blocks {
        let block_data = Dataset::new("block", dim, rows.clone());
        vseen.extend(rows.iter().cloned());
        let all_data = Dataset::new("all", dim, vseen.clone());
        let g = spec.grads(&theta, &block_data);
        let full_g = spec.grads(&theta, &all_data);
        let gap = verified
            .verified_update(&g, &full_g, SpectralMethod::Dense)
            .expect("verified update");
        worst_verified_gap = worst_verified_gap.max(gap);
    }
    assert!(
        worst_verified_gap <= FROBENIUS_GATE,
        "verified_update gap {worst_verified_gap:.3e} > {FROBENIUS_GATE:.0e}"
    );

    // --- Drift-triggered serving: cold lead, fresh reuse after a
    // train-only append, retrain after a holdout append. ---
    let pool = Arc::new(
        StreamingPool::from_datasets(
            &split.train,
            &split.holdout,
            LabelDomain::Binary01,
            IngestPolicy::Reject,
        )
        .expect("seed rows are valid"),
    );
    let server = Server::spawn_with_streams(
        base.clone(),
        ServeConfig {
            workers: 1,
            // Zero-width stale band: train-only appends reuse the pilot
            // (score is exactly 0), any new holdout rows retrain.
            drift_warn: 1e-12,
            drift_fail: 1e-12,
            ..ServeConfig::default()
        },
        spec.clone(),
        Vec::new(),
        vec![StreamShard::from_arc(1, pool.clone())],
    )
    .expect("spawn server");
    let query = Query::new(1, 0.10, 0.05, 7);

    let (cold, t_cold) = time_it(|| server.query(query).expect("cold query"));
    assert_eq!(cold.rung, DegradationRung::Full);
    assert_eq!(cold.epoch, 0);

    pool.append(block(block_rows, dim, split_seed(seed, 300), 0.0))
        .expect("valid block");
    let (fresh, t_fresh) = time_it(|| server.query(query).expect("fresh query"));
    assert_eq!(fresh.epoch, 0, "fresh reuse pins the pilot's snapshot");

    pool.append_holdout(block(holdout / 2, dim, split_seed(seed, 301), 1.0))
        .expect("valid block");
    let (retrained, t_retrain) = time_it(|| server.query(query).expect("retrain query"));
    assert_eq!(
        retrained.epoch,
        pool.epoch(),
        "drift retrain pins the current epoch"
    );

    let stats = server.stats();
    server.shutdown();
    assert_eq!(stats.drift_fresh, 1, "the train-only append must reuse");
    assert_eq!(stats.drift_retrains, 1, "the holdout append must retrain");
    assert_eq!(stats.drift_stale_served, 0, "zero-width stale band");
    assert_eq!(stats.pilot_trains, 2);
    assert_eq!(
        stats.submitted,
        stats.completed + stats.failed,
        "exactly-once reconciliation must hold at quiescence"
    );

    // --- Report. ---
    let mut table = Table::new(
        format!(
            "Ingest baseline: {blocks} blocks × {block_rows} rows onto a \
             {n}-row pool (dim {dim}, n₀ {n0})"
        ),
        &["metric", "value"],
    );
    table.row(&[
        "append throughput".into(),
        format!("{rows_per_sec:.0} rows/s"),
    ]);
    table.row(&[
        "incremental stats (total)".into(),
        fmt_duration(t_incremental),
    ]);
    table.row(&["full recompute (total)".into(), fmt_duration(t_full)]);
    table.row(&["incremental speedup".into(), format!("{stats_speedup:.2}x")]);
    table.row(&["worst Frobenius gap".into(), format!("{worst_gap:.3e}")]);
    table.row(&[
        "worst verified gap".into(),
        format!("{worst_verified_gap:.3e}"),
    ]);
    table.row(&["cold query".into(), fmt_duration(t_cold)]);
    table.row(&["fresh reuse query".into(), fmt_duration(t_fresh)]);
    table.row(&["drift retrain query".into(), fmt_duration(t_retrain)]);
    table.print();
    println!(
        "\nincremental ≡ full within {FROBENIUS_GATE:.0e} over {blocks} \
         rank-k updates; drift ladder counters reconciled"
    );

    if smoke {
        println!("\nsmoke mode: skipping results/BENCH_ingest.json");
        return;
    }

    let shape = json!({
        "n": n,
        "dim": dim,
        "n0": n0,
        "holdout": holdout,
        "blocks": blocks,
        "block_rows": block_rows,
        "reps": reps,
    });
    let append = json!({
        "rows_appended": appended_rows,
        "best_ms": t_append.as_secs_f64() * 1e3,
        "rows_per_sec": rows_per_sec,
    });
    let incremental_stats = json!({
        "incremental_ms": t_incremental.as_secs_f64() * 1e3,
        "full_ms": t_full.as_secs_f64() * 1e3,
        "speedup": stats_speedup,
        "worst_rel_frobenius_gap": worst_gap,
        "worst_verified_gap": worst_verified_gap,
        "gate": FROBENIUS_GATE,
    });
    let drift_serving = json!({
        "cold_ms": t_cold.as_secs_f64() * 1e3,
        "fresh_reuse_ms": t_fresh.as_secs_f64() * 1e3,
        "retrain_ms": t_retrain.as_secs_f64() * 1e3,
        "drift_fresh": stats.drift_fresh,
        "drift_retrains": stats.drift_retrains,
        "drift_stale_served": stats.drift_stale_served,
    });
    let doc = json!({
        "bench": "ingest",
        "seed": seed,
        "threads": blinkml_data::parallel::max_threads(),
        "shape": shape,
        "append": append,
        "incremental_stats": incremental_stats,
        "drift_serving": drift_serving,
    });
    let path = blinkml_bench::report::write_baseline("BENCH_ingest.json", &doc);
    println!("\nwrote {}", path.display());
}
