//! Ablation study of this implementation's two core engineering choices
//! (DESIGN.md §2.3): the margin cache in the diff engine and
//! sampling-by-scaling in the Sample Size Estimator.
//!
//! * **Margin cache** — prediction differences over `k` parameter draws
//!   can either recompute holdout dot-products per probe (generic path)
//!   or precompute per-draw score matrices once (margin path). Both must
//!   agree numerically; the ablation measures the speedup.
//! * **Sampling by scaling** — the binary search can either reuse one
//!   unscaled draw pool across all probes (paper §4.3) or redraw pools
//!   at every probe. The ablation measures the redundant-sampling cost
//!   and confirms the estimates agree.
//!
//! Usage:
//! `cargo run --release -p blinkml-bench --bin ablation -- [n=60000] [d=2000] [k=100] [probes=16] [seed=1]`

use blinkml_bench::{BenchArgs, Table};
use blinkml_core::diff_engine::{draw_pool, DiffEngine};
use blinkml_core::models::{LogisticRegressionSpec, MaxEntSpec};
use blinkml_core::stats::observed_fisher;
use blinkml_core::{ModelClassSpec, SampleSizeEstimator};
use blinkml_data::generators::{criteo_like, mnist_like};
use blinkml_data::{Dataset, FeatureVec};
use blinkml_optim::OptimOptions;
use std::time::Instant;

fn main() {
    let args = BenchArgs::parse(&["n", "d", "k", "probes", "seed"]);
    let n = args.get_usize("n", 60_000);
    let d = args.get_usize("d", 2_000);
    let k = args.get_usize("k", 100);
    let probes = args.get_usize("probes", 16);
    let seed = args.get_u64("seed", 1);

    margin_cache_ablation(n, d, k, probes, seed);
    sampling_by_scaling_ablation(n, d, k, seed);
}

/// Evaluate `probes × k` two-stage differences through the margin cache
/// and through raw parameter materialization.
fn margin_cache_ablation(n: usize, d: usize, k: usize, probes: usize, seed: u64) {
    println!("# Ablation 1 — margin cache vs generic diff path");
    let mut table = Table::new(
        "Two-stage diff evaluation over k draws",
        &[
            "Workload",
            "Margin Path",
            "Generic Path",
            "Speedup",
            "Max |Δv|",
        ],
    );

    // Logistic on sparse CTR data.
    let data = criteo_like(n.min(30_000), d, seed);
    let split = data.split(1_500, 0, 0xAB1);
    let spec = LogisticRegressionSpec::new(1e-3);
    run_margin_case(
        "LR, Criteo-like",
        &spec,
        &split.train,
        &split.holdout,
        k,
        probes,
        seed,
        &mut table,
    );

    // Max-entropy on dense images (10 margin outputs per example).
    let data = mnist_like(n.min(20_000), seed + 1);
    let split = data.split(1_500, 0, 0xAB2);
    let spec = MaxEntSpec::new(1e-3, 10);
    run_margin_case(
        "ME, MNIST-like",
        &spec,
        &split.train,
        &split.holdout,
        k,
        probes,
        seed,
        &mut table,
    );
    table.print();
}

#[allow(clippy::too_many_arguments)]
fn run_margin_case<F: FeatureVec, S: ModelClassSpec<F>>(
    label: &str,
    spec: &S,
    train: &Dataset<F>,
    holdout: &Dataset<F>,
    k: usize,
    probes: usize,
    seed: u64,
    table: &mut Table,
) {
    let sample = train.sample(600, seed);
    let model = spec
        .train(&sample, None, &OptimOptions::default())
        .expect("train");
    let stats = observed_fisher(spec, model.parameters(), &sample).expect("stats");
    let pool_u = draw_pool(&stats, k, seed + 2);
    let pool_w = draw_pool(&stats, k, seed + 3);
    let scales: Vec<(f64, f64)> = (0..probes)
        .map(|p| (0.03 / (p + 1) as f64, 0.01 / (p + 1) as f64))
        .collect();

    // Margin path: precompute once, then probe.
    let t = Instant::now();
    let engine = DiffEngine::new(spec, holdout, model.parameters(), &pool_u, &pool_w);
    let mut fast = Vec::with_capacity(probes * k);
    for &(s1, s2) in &scales {
        for i in 0..k {
            fast.push(engine.diff_two_stage(i, s1, s2));
        }
    }
    let fast_time = t.elapsed();

    // Generic path: materialize parameter vectors and call spec.diff.
    let t = Instant::now();
    let mut slow = Vec::with_capacity(probes * k);
    for &(s1, s2) in &scales {
        for i in 0..k {
            let theta_n: Vec<f64> = model
                .parameters()
                .iter()
                .zip(&pool_u[i])
                .map(|(b, u)| b + s1 * u)
                .collect();
            let theta_big: Vec<f64> = theta_n
                .iter()
                .zip(&pool_w[i])
                .map(|(t, w)| t + s2 * w)
                .collect();
            slow.push(spec.diff(&theta_n, &theta_big, holdout));
        }
    }
    let slow_time = t.elapsed();

    let max_dev = fast
        .iter()
        .zip(&slow)
        .fold(0.0f64, |m, (a, b)| m.max((a - b).abs()));
    table.row(&[
        label.to_string(),
        format!("{:.3} s", fast_time.as_secs_f64()),
        format!("{:.3} s", slow_time.as_secs_f64()),
        format!(
            "{:.1}x",
            slow_time.as_secs_f64() / fast_time.as_secs_f64().max(1e-9)
        ),
        format!("{max_dev:.2e}"),
    ]);
    blinkml_bench::report::append_result(
        "ablation_margin_cache",
        &serde_json::json!({
            "workload": label,
            "margin_path_s": fast_time.as_secs_f64(),
            "generic_path_s": slow_time.as_secs_f64(),
            "max_abs_deviation": max_dev,
        }),
    );
}

/// Compare one shared pool (sampling by scaling) against redrawing the
/// pool at every binary-search probe.
fn sampling_by_scaling_ablation(n: usize, d: usize, k: usize, seed: u64) {
    println!("\n# Ablation 2 — sampling by scaling vs per-probe redraw");
    let data = criteo_like(n.min(40_000), d, seed + 10);
    let split = data.split(1_500, 0, 0xAB3);
    let spec = LogisticRegressionSpec::new(1e-3);
    let n0 = 600;
    let sample = split.train.sample(n0, seed + 11);
    let model = spec
        .train(&sample, None, &OptimOptions::default())
        .expect("train");
    let stats = observed_fisher(&spec, model.parameters(), &sample).expect("stats");
    let full_n = split.train.len();
    let epsilon = 0.05;

    // Shared-pool estimator (the shipped implementation).
    let t = Instant::now();
    let shared = SampleSizeEstimator::new(k).estimate(
        &spec,
        model.parameters(),
        &stats,
        n0,
        full_n,
        &split.holdout,
        epsilon,
        0.05,
        seed + 12,
    );
    let shared_time = t.elapsed();

    // Redraw variant: fresh pools and a fresh engine per probe.
    let t = Instant::now();
    let level = blinkml_prob::conservative_level(0.05, k);
    let alpha = |a: usize, b: usize| (1.0 / a as f64 - 1.0 / b as f64).max(0.0);
    let mut probes = 0usize;
    let mut satisfied = |nn: usize, probe_seed: u64| -> bool {
        probes += 1;
        let pool_u = draw_pool(&stats, k, probe_seed);
        let pool_w = draw_pool(&stats, k, probe_seed + 1);
        let engine = DiffEngine::new(&spec, &split.holdout, model.parameters(), &pool_u, &pool_w);
        let a1 = alpha(n0, nn).sqrt();
        let a2 = alpha(nn, full_n).sqrt();
        let hits = (0..k)
            .filter(|&i| engine.diff_two_stage(i, a1, a2) <= epsilon)
            .count();
        hits as f64 / k as f64 >= level
    };
    let redraw_n = {
        let mut lo = n0;
        let mut hi = full_n;
        if satisfied(n0, seed + 100) {
            lo = full_n; // degenerate: contract met at n0
            hi = n0;
            std::mem::swap(&mut lo, &mut hi);
            hi
        } else {
            while hi - lo > 1 {
                let mid = lo + (hi - lo) / 2;
                if satisfied(mid, seed + 100 + mid as u64) {
                    hi = mid;
                } else {
                    lo = mid;
                }
            }
            hi
        }
    };
    let redraw_time = t.elapsed();

    let mut table = Table::new(
        "Sample-size search",
        &["Variant", "Estimated n", "Runtime", "Probes"],
    );
    table.row(&[
        "shared pool (paper §4.3)".into(),
        format!("{}", shared.n),
        format!("{:.3} s", shared_time.as_secs_f64()),
        format!("{}", shared.probes),
    ]);
    table.row(&[
        "redraw per probe".into(),
        format!("{redraw_n}"),
        format!("{:.3} s", redraw_time.as_secs_f64()),
        format!("{probes}"),
    ]);
    table.print();
    let agreement = (shared.n as f64 / redraw_n as f64).max(redraw_n as f64 / shared.n as f64);
    println!("estimate agreement factor: {agreement:.2} (1.0 = identical)");
    blinkml_bench::report::append_result(
        "ablation_sampling_by_scaling",
        &serde_json::json!({
            "shared_n": shared.n,
            "shared_time_s": shared_time.as_secs_f64(),
            "redraw_n": redraw_n,
            "redraw_time_s": redraw_time.as_secs_f64(),
            "agreement_factor": agreement,
        }),
    );
}
