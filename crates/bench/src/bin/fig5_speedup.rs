//! Figure 5 / Table 4: BlinkML's training-time savings vs full training.
//!
//! For each (model, dataset) combination and requested accuracy, runs
//! BlinkML end-to-end and reports the median training time, the ratio to
//! full-model training, the speedup, and the chosen sample size.
//!
//! Usage:
//! `cargo run --release -p blinkml-bench --bin fig5_speedup -- [scale=1.0] [reps=5] [n0=1000] [k=100] [seed=1] [combo=<label substr>]`

use blinkml_bench::{combos::ComboId, fmt_duration, BenchArgs, Table};

fn main() {
    let args = BenchArgs::parse(&["scale", "reps", "n0", "k", "seed", "combo"]);
    let scale = args.get_f64("scale", 1.0);
    let reps = args.get_usize("reps", 5);
    let n0 = args.get_usize("n0", 1_000);
    let k = args.get_usize("k", 100);
    let seed = args.get_u64("seed", 1);
    let filter = args.get_str("combo", "");

    println!(
        "# Figure 5 / Table 4 — training time savings (scale={scale}, reps={reps}, n0={n0}, k={k})"
    );
    for id in ComboId::paper_combos() {
        if !filter.is_empty() && !id.label().contains(&filter) {
            continue;
        }
        let mut combo = id.make(scale, seed);
        let full = combo.train_full();
        println!(
            "\n{}: N = {}, d = {}, full-model training = {} ({} iters)",
            id.label(),
            combo.train_len(),
            combo.dim(),
            fmt_duration(full.elapsed),
            full.iterations
        );

        let mut table = Table::new(
            format!("{} — speedup vs requested accuracy", id.label()),
            &[
                "Requested Acc",
                "Training Time",
                "Ratio to Full",
                "Speedup",
                "Sample Size",
            ],
        );
        for &accuracy in id.accuracy_sweep() {
            let epsilon = 1.0 - accuracy;
            let mut times: Vec<f64> = Vec::with_capacity(reps);
            let mut sizes: Vec<usize> = Vec::with_capacity(reps);
            for rep in 0..reps {
                let run = combo.run_blinkml(
                    epsilon,
                    0.05,
                    id.effective_n0(n0),
                    k,
                    seed + 17 * rep as u64,
                );
                times.push(run.elapsed.as_secs_f64());
                sizes.push(run.sample_size);
            }
            times.sort_by(|a, b| a.partial_cmp(b).expect("finite times"));
            let median = times[times.len() / 2];
            let ratio = median / full.elapsed.as_secs_f64();
            let median_n = {
                sizes.sort_unstable();
                sizes[sizes.len() / 2]
            };
            table.row(&[
                format!("{:.2}%", accuracy * 100.0),
                format!("{median:.3} s"),
                format!("{:.2}%", ratio * 100.0),
                format!("{:.1}x", 1.0 / ratio.max(1e-12)),
                format!("{median_n}"),
            ]);
            blinkml_bench::report::append_result(
                "fig5_speedup",
                &serde_json::json!({
                    "combo": id.label(),
                    "requested_accuracy": accuracy,
                    "median_time_s": median,
                    "full_time_s": full.elapsed.as_secs_f64(),
                    "ratio": ratio,
                    "median_sample_size": median_n,
                    "N": combo.train_len(),
                }),
            );
        }
        table.print();
    }
}
