//! Record the estimator-pipeline perf baseline to
//! `results/BENCH_pipeline.json`.
//!
//! Times each sequential/batched pair of the compute spine (blocked
//! GEMM, parallel second moment, GEMM-based `DiffEngine` construction,
//! and the end-to-end sample-size probe loop) and writes one JSON
//! document with the before/after interleaved minimum times, so future
//! PRs have a perf trajectory to compare against.
//!
//! Usage:
//! `cargo run --release -p blinkml-bench --bin pipeline_baseline -- \
//!  [mode=full|smoke] [holdout=50000] [dim=100] [pool=128] [reps=5] [seed=1]`
//!
//! `mode=smoke` shrinks the shapes and prints the table without writing
//! the JSON (the CI smoke job uses it).

use blinkml_bench::seqref::{bench_matrix, bench_pool, second_moment_seq, NoBatch};
use blinkml_bench::{fmt_duration, paired_min_times, BenchArgs, Table};
use blinkml_core::diff_engine::DiffEngine;
use blinkml_core::grads::Grads;
use blinkml_core::models::LinearRegressionSpec;
use blinkml_data::generators::synthetic_linear;
use blinkml_linalg::blas;
use serde_json::{json, Value};
use std::time::Duration;

struct Pair {
    name: &'static str,
    shape: String,
    seq: Duration,
    batched: Duration,
}

impl Pair {
    fn speedup(&self) -> f64 {
        self.seq.as_secs_f64() / self.batched.as_secs_f64().max(1e-12)
    }
}

fn main() {
    let args = BenchArgs::parse(&["mode", "holdout", "dim", "pool", "reps", "seed"]);
    let mode = args.get_str("mode", "full");
    let smoke = mode == "smoke";
    assert!(
        smoke || mode == "full",
        "mode must be 'full' or 'smoke', got '{mode}'"
    );
    let (def_h, def_d, def_pool) = if smoke {
        (4_000, 16, 16)
    } else {
        (50_000, 100, 128)
    };
    let h = args.get_usize("holdout", def_h);
    let d = args.get_usize("dim", def_d);
    let pool_k = args.get_usize("pool", def_pool);
    let reps = args.get_usize("reps", if smoke { 2 } else { 5 });
    let seed = args.get_u64("seed", 1);
    let gemm_dim = if smoke { 64 } else { 256 };

    let mut pairs = Vec::new();

    // 1. Blocked parallel GEMM vs the sequential kernel.
    let a = bench_matrix(gemm_dim, gemm_dim, seed);
    let b = bench_matrix(gemm_dim, gemm_dim, seed + 1);
    let (seq, batched) = paired_min_times(
        reps,
        || blas::gemm(&a, &b).unwrap(),
        || blas::par_gemm(&a, &b).unwrap(),
    );
    pairs.push(Pair {
        name: "gemm",
        shape: format!("{gemm_dim}x{gemm_dim} * {gemm_dim}x{gemm_dim}"),
        seq,
        batched,
    });

    // 2. Parallel second moment vs the sequential syrk pass.
    let m = bench_matrix(h, d, seed + 2);
    let grads = Grads::Dense(m.clone());
    let (seq, batched) = paired_min_times(reps, || second_moment_seq(&m), || grads.second_moment());
    pairs.push(Pair {
        name: "second_moment",
        shape: format!("{h}x{d}"),
        seq,
        batched,
    });

    // 3. DiffEngine construction: per-example scoring vs one fused GEMM.
    let (holdout, _) = synthetic_linear(h, d, 0.3, seed + 3);
    let base = bench_pool(1, d + 1, seed + 4).pop().expect("one vector");
    let pool = bench_pool(pool_k, d + 1, seed + 5);
    let spec = LinearRegressionSpec::new(1e-3);
    let seq_spec = NoBatch(LinearRegressionSpec::new(1e-3));
    let (seq, batched) = paired_min_times(
        reps,
        || DiffEngine::new(&seq_spec, &holdout, &base, &pool, &pool),
        || DiffEngine::new(&spec, &holdout, &base, &pool, &pool),
    );
    pairs.push(Pair {
        name: "diff_engine_build",
        shape: format!("holdout={h} D={d} pool={pool_k}"),
        seq,
        batched,
    });

    // 4. End-to-end probe loop (one Sample Size Estimator probe):
    // plain sequential loop vs the estimator's actual draw-parallel
    // path (`par_ranges_with` with the per-draw chunk size, as in
    // sample_size.rs). Equal on one core; the gap is the thread-level
    // win on multicore machines.
    let engine = DiffEngine::new(&spec, &holdout, &base, &pool, &pool);
    let (seq, batched) = paired_min_times(
        reps,
        || {
            (0..pool_k)
                .filter(|&i| engine.diff_two_stage(i, 0.02, 0.01) <= 0.05)
                .count()
        },
        || {
            blinkml_data::parallel::par_ranges_with(pool_k, 1, |range| {
                range
                    .filter(|&i| engine.diff_two_stage(i, 0.02, 0.01) <= 0.05)
                    .count()
            })
            .into_iter()
            .sum::<usize>()
        },
    );
    pairs.push(Pair {
        name: "sse_probe",
        shape: format!("k={pool_k} holdout={h}"),
        seq,
        batched,
    });

    let mut table = Table::new(
        format!("Estimator pipeline: sequential vs batched (reps={reps})"),
        &["kernel", "shape", "sequential", "batched", "speedup"],
    );
    for p in &pairs {
        table.row(&[
            p.name.to_string(),
            p.shape.clone(),
            fmt_duration(p.seq),
            fmt_duration(p.batched),
            format!("{:.2}x", p.speedup()),
        ]);
    }
    table.print();

    if smoke {
        println!("\nsmoke mode: skipping results/BENCH_pipeline.json");
        return;
    }

    let entries: Vec<Value> = pairs
        .iter()
        .map(|p| {
            json!({
                "kernel": p.name,
                "shape": p.shape.clone(),
                "sequential_ms": p.seq.as_secs_f64() * 1e3,
                "batched_ms": p.batched.as_secs_f64() * 1e3,
                "speedup": p.speedup(),
            })
        })
        .collect();
    let doc = json!({
        "bench": "pipeline",
        "reps": reps,
        "seed": seed,
        "threads": blinkml_data::parallel::max_threads(),
        "chunk_size": blinkml_data::parallel::CHUNK_SIZE,
        "pairs": Value::Array(entries),
    });
    let path = blinkml_bench::report::write_baseline("BENCH_pipeline.json", &doc);
    println!("\nwrote {}", path.display());
}
