//! Figure 9: comparison of the statistics computation methods.
//!
//! * **9a** — estimated/actual parameter-variance ratio vs sample size
//!   for ClosedForm, InverseGradients, and ObservedFisher on
//!   (Lin, Power-like). The "actual" variance comes from training many
//!   models on independent samples of each size; a ratio near (or just
//!   above) 1 means the method is accurate (and conservative).
//! * **9b** — runtime and covariance accuracy (average Frobenius
//!   distance to the reference, `(1/D²)·‖C_t − C_e‖_F`) of
//!   InverseGradients vs ObservedFisher on a low-dimensional (LR,
//!   HIGGS-like) and a higher-dimensional (ME, MNIST-like) workload.
//!
//! Usage:
//! `cargo run --release -p blinkml-bench --bin fig9_stats -- [n=60000] [trainings=30] [seed=1] [sizes=100,500,1000,5000,10000]`

use blinkml_bench::{BenchArgs, Table};
use blinkml_core::models::{LinearRegressionSpec, LogisticRegressionSpec, MaxEntSpec};
use blinkml_core::stats::{closed_form, inverse_gradients, observed_fisher};
use blinkml_core::{ModelClassSpec, ModelStatistics};
use blinkml_data::generators::{higgs_like, mnist_like, power_like};
use blinkml_data::{Dataset, FeatureVec};
use blinkml_optim::OptimOptions;
use blinkml_prob::OnlineStats;
use std::time::Instant;

fn main() {
    let args = BenchArgs::parse(&["n", "trainings", "seed", "sizes"]);
    let n = args.get_usize("n", 60_000);
    let trainings = args.get_usize("trainings", 30);
    let seed = args.get_u64("seed", 1);
    let sizes: Vec<usize> = args
        .get_str("sizes", "100,500,1000,5000,10000")
        .split(',')
        .map(|s| s.trim().parse().expect("sizes must be integers"))
        .collect();

    variance_ratio_study(n, &sizes, trainings, seed);
    method_comparison_study(seed);
}

/// Fig 9a: estimated vs actual parameter variance, per method and n.
fn variance_ratio_study(n: usize, sizes: &[usize], trainings: usize, seed: u64) {
    println!("# Figure 9a — estimated/actual variance ratio (Lin, Power-like), {trainings} trainings per size");
    let data = power_like(n, seed);
    let spec = LinearRegressionSpec::new(1e-3);
    let opts = OptimOptions::default();
    let d = data.dim();
    let full_n = data.len();

    let mut table = Table::new(
        "Est. var / actual var (ratio near 1 is best)",
        &[
            "Sample Size",
            "ClosedForm",
            "InverseGradients",
            "ObservedFisher",
        ],
    );
    for &size in sizes {
        // Actual: empirical variance of each coordinate over repeated
        // trainings on independent samples of this size.
        let mut coord_stats: Vec<OnlineStats> = vec![OnlineStats::new(); d];
        let mut last_sample = None;
        for t in 0..trainings {
            let sample = data.sample(size, seed + 1_000 * t as u64);
            let model = spec.train(&sample, None, &opts).expect("training failed");
            for (s, &v) in coord_stats.iter_mut().zip(model.parameters()) {
                s.push(v);
            }
            last_sample = Some(sample);
        }
        let actual: Vec<f64> = coord_stats.iter().map(|s| s.variance()).collect();
        // Estimated: α·diag(H⁻¹JH⁻¹) from one trained model per method.
        let sample = last_sample.expect("at least one training");
        let model = spec.train(&sample, None, &opts).expect("training failed");
        let alpha = 1.0 / size as f64 - 1.0 / full_n as f64;
        let ratio = |stats: &ModelStatistics| -> f64 {
            let est = stats.marginal_variances();
            // Median coordinate-wise ratio is robust to near-zero actuals.
            let mut ratios: Vec<f64> = est
                .iter()
                .zip(&actual)
                .filter(|(_, &a)| a > 1e-18)
                .map(|(e, a)| alpha * e / a)
                .collect();
            ratios.sort_by(|x, y| x.partial_cmp(y).expect("finite"));
            ratios[ratios.len() / 2]
        };
        let cf = closed_form(&spec, model.parameters(), &sample).expect("cf");
        let ig = inverse_gradients(&spec, model.parameters(), &sample).expect("ig");
        let of = observed_fisher(&spec, model.parameters(), &sample).expect("of");
        let (rcf, rig, rof) = (ratio(&cf), ratio(&ig), ratio(&of));
        table.row(&[
            format!("{size}"),
            format!("{rcf:.3}"),
            format!("{rig:.3}"),
            format!("{rof:.3}"),
        ]);
        blinkml_bench::report::append_result(
            "fig9a_variance_ratio",
            &serde_json::json!({
                "sample_size": size,
                "ratio_closed_form": rcf,
                "ratio_inverse_gradients": rig,
                "ratio_observed_fisher": rof,
                "trainings": trainings,
            }),
        );
    }
    table.print();
}

/// Shared 9b measurement: time IG and OF on a trained model and report
/// `(runtime, frobenius distance to reference)` pairs.
fn compare_methods<F: FeatureVec, S: ModelClassSpec<F>>(
    label: &str,
    spec: &S,
    data: &Dataset<F>,
    sample_size: usize,
    reference_from_closed_form: bool,
    table: &mut Table,
    seed: u64,
) {
    let sample = data.sample(sample_size, seed);
    let model = spec
        .train(&sample, None, &OptimOptions::default())
        .expect("training failed");
    let dim = model.parameters().len() as f64;

    let t = Instant::now();
    let ig = inverse_gradients(spec, model.parameters(), &sample).expect("ig");
    let ig_time = t.elapsed();
    let t = Instant::now();
    let of = observed_fisher(spec, model.parameters(), &sample).expect("of");
    let of_time = t.elapsed();

    // Reference covariance: ClosedForm when available (LR), otherwise
    // ObservedFisher on a 10x larger sample (documented substitution —
    // the paper's "true" covariance is equally an estimate).
    let reference = if reference_from_closed_form {
        closed_form(spec, model.parameters(), &sample)
            .expect("cf")
            .covariance_dense()
    } else {
        let big = data.sample((sample_size * 10).min(data.len()), seed + 1);
        let big_model = spec
            .train(&big, None, &OptimOptions::default())
            .expect("training failed");
        observed_fisher(spec, big_model.parameters(), &big)
            .expect("of-ref")
            .covariance_dense()
    };
    let frob = |stats: &ModelStatistics| -> f64 {
        let c = stats.covariance_dense();
        let mut diff = c;
        diff.add_scaled(-1.0, &reference);
        diff.frobenius_norm() / (dim * dim)
    };
    let (ig_err, of_err) = (frob(&ig), frob(&of));
    table.row(&[
        label.to_string(),
        format!("{:.3} s", ig_time.as_secs_f64()),
        format!("{ig_err:.3e}"),
        format!("{:.3} s", of_time.as_secs_f64()),
        format!("{of_err:.3e}"),
    ]);
    blinkml_bench::report::append_result(
        "fig9b_method_comparison",
        &serde_json::json!({
            "workload": label,
            "ig_runtime_s": ig_time.as_secs_f64(),
            "ig_frobenius": ig_err,
            "of_runtime_s": of_time.as_secs_f64(),
            "of_frobenius": of_err,
            "param_dim": dim,
        }),
    );
}

/// Fig 9b: IG vs OF on low- and high-dimensional workloads.
fn method_comparison_study(seed: u64) {
    println!("\n# Figure 9b — InverseGradients vs ObservedFisher");
    let mut table = Table::new(
        "Method comparison (runtime / avg Frobenius error)",
        &[
            "Workload",
            "IG Runtime",
            "IG Accuracy",
            "OF Runtime",
            "OF Accuracy",
        ],
    );
    let higgs = higgs_like(40_000, 28, seed);
    let lr = LogisticRegressionSpec::new(1e-3);
    compare_methods(
        "LR, HIGGS-like",
        &lr,
        &higgs,
        5_000,
        true,
        &mut table,
        seed + 10,
    );

    let mnist = mnist_like(20_000, seed);
    let me = MaxEntSpec::new(1e-3, 10);
    compare_methods(
        "ME, MNIST-like",
        &me,
        &mnist,
        1_000,
        false,
        &mut table,
        seed + 20,
    );
    table.print();
}
