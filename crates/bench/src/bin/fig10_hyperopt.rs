//! Figure 10: hyperparameter optimization with BlinkML vs full training.
//!
//! Random search over (feature subset, L2 coefficient) pairs, exactly as
//! in §5.7: both approaches walk the *same* candidate sequence; the
//! traditional approach trains an exact model per candidate while
//! BlinkML trains a 95%-accurate approximation. Candidates are drawn as
//! groups that share a feature subset with several β draws each — the
//! shape real random search produces when the subset dimension is
//! coarser than the regularization dimension. The BlinkML arm exploits
//! that structure: each group projects its design matrix once and runs
//! the whole β grid through one `Session::sweep` call (shared pilot
//! capture, lockstep multi-β probe rounds, one nested final capture),
//! instead of one `Coordinator` run per candidate. Reports how many
//! models each approach evaluates within the time budget and the best
//! test accuracy found over time.
//!
//! Usage:
//! `cargo run --release -p blinkml-bench --bin fig10_hyperopt -- [n=120000] [d=28] [budget_s=60] [n0=1000] [k=100] [group=5] [seed=1]`

use blinkml_bench::{BenchArgs, Table};
use blinkml_core::models::LogisticRegressionSpec;
use blinkml_core::{BlinkMlConfig, ModelClassSpec, Session, StatisticsMethod};
use blinkml_data::generators::higgs_like;
use blinkml_data::{Dataset, DenseVec, Example};
use blinkml_optim::OptimOptions;
use blinkml_prob::rng_from_seed;
use rand::Rng;
use std::time::Instant;

/// One random-search candidate group: a feature subset shared by
/// several L2 coefficient draws.
#[derive(Debug, Clone)]
struct CandidateGroup {
    features: Vec<usize>,
    betas: Vec<f64>,
}

/// Generate the shared candidate sequence: `count` feature subsets with
/// `group` β draws each. Both arms walk groups (and the βs inside each
/// group) in this exact order.
fn candidate_groups(d: usize, count: usize, group: usize, seed: u64) -> Vec<CandidateGroup> {
    let mut rng = rng_from_seed(seed);
    (0..count)
        .map(|_| {
            let size = rng.gen_range(d / 3..=d);
            let mut features: Vec<usize> = (0..d).collect();
            // Partial shuffle, keep the first `size`.
            for i in 0..size {
                let j = rng.gen_range(i..d);
                features.swap(i, j);
            }
            features.truncate(size);
            features.sort_unstable();
            let betas = (0..group)
                .map(|_| 10f64.powf(rng.gen_range(-5.0..0.0)))
                .collect();
            CandidateGroup { features, betas }
        })
        .collect()
}

/// Project a dataset onto a feature subset.
fn project(data: &Dataset<DenseVec>, features: &[usize]) -> Dataset<DenseVec> {
    let examples = data
        .iter()
        .map(|e| Example {
            x: DenseVec::new(features.iter().map(|&f| e.x.as_slice()[f]).collect()),
            y: e.y,
        })
        .collect();
    Dataset::new(data.name(), features.len(), examples)
}

fn main() {
    let args = BenchArgs::parse(&["n", "d", "budget_s", "n0", "k", "group", "seed"]);
    let n = args.get_usize("n", 120_000);
    let d = args.get_usize("d", 28);
    let budget_s = args.get_f64("budget_s", 60.0);
    let n0 = args.get_usize("n0", 1_000);
    let k = args.get_usize("k", 100);
    let group = args.get_usize("group", 5);
    let seed = args.get_u64("seed", 1);

    println!(
        "# Figure 10 — hyperparameter optimization (N={n}, d={d}, budget={budget_s}s per approach)"
    );
    let data = higgs_like(n, d, seed);
    let split = data.split(2_000, 3_000, 0xF10);
    let groups = candidate_groups(d, 4_000usize.div_ceil(group), group, seed + 5);

    let mut table = Table::new(
        "Random search within equal time budgets",
        &[
            "Approach",
            "Models",
            "Best Test Acc",
            "Time to Best",
            "First Model At",
        ],
    );
    for (approach, is_blinkml) in [("Full training", false), ("BlinkML 95% (sweep)", true)] {
        let start = Instant::now();
        let mut evaluated = 0usize;
        let mut sweeps = 0usize;
        let mut best_acc = 0.0f64;
        let mut best_at = 0.0f64;
        let mut first_at = 0.0f64;
        'outer: for (gi, cand) in groups.iter().enumerate() {
            if start.elapsed().as_secs_f64() > budget_s {
                break;
            }
            let train = project(&split.train, &cand.features);
            let holdout = project(&split.holdout, &cand.features);
            let test = project(&split.test, &cand.features);
            if is_blinkml {
                let config = BlinkMlConfig {
                    epsilon: 0.05,
                    delta: 0.05,
                    initial_sample_size: n0,
                    holdout_size: holdout.len(),
                    num_param_samples: k,
                    statistics_method: StatisticsMethod::ObservedFisher,
                    spectral: Default::default(),
                    sampling: Default::default(),
                    optim: OptimOptions::default(),
                    estimate_final_accuracy: false,
                    exec: Default::default(),
                };
                // One projected design matrix, one sweep over the
                // group's whole β grid: pilots, probe rounds, and the
                // final sample capture are shared across the grid.
                let base = LogisticRegressionSpec::new(cand.betas[0]);
                let session = Session::new(config, &base, &train, &holdout).expect("sweep session");
                let sweep = session
                    .sweep(&cand.betas, 0.05, 0.05, seed + gi as u64)
                    .expect("blinkml sweep failed");
                sweeps += 1;
                for point in &sweep.points {
                    evaluated += 1;
                    if evaluated == 1 {
                        first_at = start.elapsed().as_secs_f64();
                    }
                    let spec = LogisticRegressionSpec::new(point.lambda);
                    let acc =
                        1.0 - spec.generalization_error(point.outcome.model.parameters(), &test);
                    if acc > best_acc {
                        best_acc = acc;
                        best_at = start.elapsed().as_secs_f64();
                    }
                }
            } else {
                for &beta in &cand.betas {
                    if start.elapsed().as_secs_f64() > budget_s {
                        break 'outer;
                    }
                    let spec = LogisticRegressionSpec::new(beta);
                    let theta = spec
                        .train(&train, None, &OptimOptions::default())
                        .expect("training failed")
                        .into_parameters();
                    evaluated += 1;
                    if evaluated == 1 {
                        first_at = start.elapsed().as_secs_f64();
                    }
                    let acc = 1.0 - spec.generalization_error(&theta, &test);
                    if acc > best_acc {
                        best_acc = acc;
                        best_at = start.elapsed().as_secs_f64();
                    }
                }
            }
        }
        table.row(&[
            approach.to_string(),
            format!("{evaluated}"),
            format!("{:.2}%", best_acc * 100.0),
            format!("{best_at:.1} s"),
            format!("{first_at:.2} s"),
        ]);
        blinkml_bench::report::append_result(
            "fig10_hyperopt",
            &serde_json::json!({
                "approach": approach,
                "models_evaluated": evaluated,
                "sweep_calls": sweeps,
                "group_size": group,
                "best_test_accuracy": best_acc,
                "time_to_best_s": best_at,
                "first_model_s": first_at,
                "budget_s": budget_s,
            }),
        );
    }
    table.print();
}
