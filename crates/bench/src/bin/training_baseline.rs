//! Record the batched-training-engine perf baseline to
//! `results/BENCH_training.json`.
//!
//! Times end-to-end `train()` through the batched engine (zero-copy
//! design-matrix view + fused margin/loss/gradient sweep) against the
//! scalar per-example path (`testing::ScalarTrain`), as an interleaved
//! order-alternating pair (shared `paired_min_times` methodology). The
//! batched engine is **bit-identical** to the scalar path, so the
//! recorder also asserts the trained parameters match exactly and that
//! the coordinator's chosen sample size is unchanged.
//!
//! Usage:
//! `cargo run --release -p blinkml-bench --bin training_baseline -- \
//!  [mode=full|smoke] [n=50000] [dim=100] [scale=2.0] [beta=0.001] \
//!  [reps=9] [seed=1] [epsilon=0.02] [holdout=2000] [sparse_n=20000] \
//!  [sparse_dim=500]`
//!
//! `mode=smoke` shrinks the shapes, asserts the batched path is at
//! least at parity (≥ 1.0×), and skips the JSON (the CI smoke job).

use blinkml_bench::{fmt_duration, paired_min_times, BenchArgs, Table};
use blinkml_core::models::{LogisticRegressionSpec, MaxEntSpec};
use blinkml_core::testing::ScalarTrain;
use blinkml_core::{BlinkMlConfig, Coordinator, ModelClassSpec};
use blinkml_data::generators::{synthetic_logistic, yelp_like};
use blinkml_data::{DatasetMatrix, TrainScratch};
use blinkml_optim::OptimOptions;
use serde_json::json;
use std::time::Duration;

/// One measured model pair.
struct PairResult {
    label: String,
    scalar: Duration,
    batched: Duration,
    theta_max_diff: f64,
    iterations: usize,
}

impl PairResult {
    fn speedup(&self) -> f64 {
        self.scalar.as_secs_f64() / self.batched.as_secs_f64().max(1e-12)
    }
}

fn main() {
    let args = BenchArgs::parse(&[
        "mode",
        "n",
        "dim",
        "scale",
        "beta",
        "reps",
        "seed",
        "epsilon",
        "holdout",
        "sparse_n",
        "sparse_dim",
    ]);
    let mode = args.get_str("mode", "full");
    let smoke = mode == "smoke";
    assert!(
        smoke || mode == "full",
        "mode must be 'full' or 'smoke', got '{mode}'"
    );
    let (def_n, def_d, def_reps, def_sn, def_sd) = if smoke {
        (20_000, 64, 5, 4_000, 200)
    } else {
        (50_000, 100, 9, 20_000, 500)
    };
    let n = args.get_usize("n", def_n);
    let dim = args.get_usize("dim", def_d);
    let scale = args.get_f64("scale", 2.0);
    let beta = args.get_f64("beta", 1e-3);
    let reps = args.get_usize("reps", def_reps);
    let seed = args.get_u64("seed", 1);
    let epsilon = args.get_f64("epsilon", 0.02);
    let holdout = args.get_usize("holdout", if smoke { 800 } else { 2_000 });
    let sparse_n = args.get_usize("sparse_n", def_sn);
    let sparse_dim = args.get_usize("sparse_dim", def_sd);
    let opts = OptimOptions::default();

    // --- Pair 1: the acceptance shape — dense logistic regression. ---
    let (data, _) = synthetic_logistic(n, dim, scale, seed);
    let spec = LogisticRegressionSpec::new(beta);
    let scalar_spec = ScalarTrain(LogisticRegressionSpec::new(beta));
    let (t_scalar, t_batched) = paired_min_times(
        reps,
        || scalar_spec.train(&data, None, &opts).unwrap(),
        || spec.train(&data, None, &opts).unwrap(),
    );
    let m_scalar = scalar_spec.train(&data, None, &opts).unwrap();
    let m_batched = spec.train(&data, None, &opts).unwrap();
    let logistic = PairResult {
        label: format!("logistic n={n} d={dim}"),
        scalar: t_scalar,
        batched: t_batched,
        theta_max_diff: max_abs_diff(m_scalar.parameters(), m_batched.parameters()),
        iterations: m_batched.iterations,
    };
    assert!(
        logistic.theta_max_diff <= 1e-8,
        "batched θ drifted from the scalar path: {}",
        logistic.theta_max_diff
    );

    // --- Pair 2: sparse max-entropy (CSR margins + scatter). ---
    let sdata = yelp_like(sparse_n, sparse_dim, seed + 1);
    let sspec = MaxEntSpec::new(beta, 5);
    let sscalar = ScalarTrain(MaxEntSpec::new(beta, 5));
    let (st_scalar, st_batched) = paired_min_times(
        reps.min(5),
        || sscalar.train(&sdata, None, &opts).unwrap(),
        || sspec.train(&sdata, None, &opts).unwrap(),
    );
    let sm_scalar = sscalar.train(&sdata, None, &opts).unwrap();
    let sm_batched = sspec.train(&sdata, None, &opts).unwrap();
    let maxent = PairResult {
        label: format!("maxent-sparse n={sparse_n} d={sparse_dim} K=5"),
        scalar: st_scalar,
        batched: st_batched,
        theta_max_diff: max_abs_diff(sm_scalar.parameters(), sm_batched.parameters()),
        iterations: sm_batched.iterations,
    };
    assert!(
        maxent.theta_max_diff <= 1e-8,
        "sparse batched θ drifted: {}",
        maxent.theta_max_diff
    );

    // --- Single objective evaluations: the engine's unit of work, at
    // the acceptance shape and at a cache-resident shape (where the
    // kernel-level win is not masked by the memory system). ---
    let eval_pair = |n_e: usize, d_e: usize| -> (f64, f64) {
        let (edata, _) = synthetic_logistic(n_e, d_e, scale, seed + 7);
        let espec = LogisticRegressionSpec::new(beta);
        let theta: Vec<f64> = (0..d_e).map(|i| (i as f64 * 0.17).sin() * 0.2).collect();
        let xm = DatasetMatrix::from_dataset(&edata);
        let xmv = xm.view();
        let mut scratch = TrainScratch::new();
        let mut gbuf = vec![0.0; d_e];
        let (ts, tb) = paired_min_times(
            (reps * 3).max(15),
            || {
                <LogisticRegressionSpec as ModelClassSpec<blinkml_data::DenseVec>>::objective(
                    &espec, &theta, &edata,
                )
            },
            || {
                <LogisticRegressionSpec as ModelClassSpec<blinkml_data::DenseVec>>::value_grad_batched(
                    &espec,
                    &theta,
                    &xmv,
                    &mut scratch,
                    &mut gbuf,
                )
            },
        );
        (ts.as_secs_f64() * 1e3, tb.as_secs_f64() * 1e3)
    };
    let (eval_scalar_full, eval_batched_full) = eval_pair(n, dim);
    let (eval_scalar_small, eval_batched_small) = eval_pair(n / 10, dim);

    // --- Coordinator: chosen n must be unchanged by the engine. ---
    let cfg = BlinkMlConfig {
        epsilon,
        delta: 0.05,
        initial_sample_size: (n / 10).max(200),
        holdout_size: holdout,
        num_param_samples: 32,
        ..BlinkMlConfig::default()
    };
    let out_batched = Coordinator::new(cfg.clone())
        .train(&spec, &data, seed)
        .expect("coordinator (batched)");
    let out_scalar = Coordinator::new(cfg)
        .train(&scalar_spec, &data, seed)
        .expect("coordinator (scalar)");
    assert_eq!(
        out_batched.sample_size, out_scalar.sample_size,
        "the batched engine changed the coordinator's chosen n"
    );

    let mut table = Table::new(
        format!("End-to-end train(): scalar per-example path vs batched engine (reps={reps})"),
        &["pair", "scalar", "batched", "speedup", "‖Δθ‖∞", "iters"],
    );
    for pair in [&logistic, &maxent] {
        table.row(&[
            pair.label.clone(),
            fmt_duration(pair.scalar),
            fmt_duration(pair.batched),
            format!("{:.2}x", pair.speedup()),
            format!("{:.1e}", pair.theta_max_diff),
            format!("{}", pair.iterations),
        ]);
    }
    table.print();
    println!(
        "\nsingle eval (objective vs batched): {eval_scalar_full:.2} ms vs \
         {eval_batched_full:.2} ms at n={n} ({:.2}x); {eval_scalar_small:.3} ms vs \
         {eval_batched_small:.3} ms at n={} ({:.2}x, cache-resident)",
        eval_scalar_full / eval_batched_full.max(1e-12),
        n / 10,
        eval_scalar_small / eval_batched_small.max(1e-12),
    );
    println!(
        "coordinator chosen n: batched {} == scalar {} (N = {})",
        out_batched.sample_size, out_scalar.sample_size, out_batched.full_data_size
    );

    if smoke {
        // Timing gate: the batched path must be at least at parity with
        // the scalar path. The exactness asserts above (bit-equal θ,
        // unchanged chosen n) are the hard correctness gates; this one
        // is wall-clock on a shared runner, so it carries a 10% noise
        // allowance below the ≥1.0× target rather than failing CI on a
        // scheduling blip.
        assert!(
            logistic.speedup() >= 0.9,
            "smoke gate: batched path slower than scalar ({:.2}x < 0.9x)",
            logistic.speedup()
        );
        println!("\nsmoke mode: skipping results/BENCH_training.json");
        return;
    }

    let shape = json!({
        "n": n,
        "dim": dim,
        "scale": scale,
        "beta": beta,
        "sparse_n": sparse_n,
        "sparse_dim": sparse_dim,
    });
    let single_eval = json!({
        "scalar_ms_full": eval_scalar_full,
        "batched_ms_full": eval_batched_full,
        "speedup_full": eval_scalar_full / eval_batched_full.max(1e-12),
        "scalar_ms_small": eval_scalar_small,
        "batched_ms_small": eval_batched_small,
        "speedup_small": eval_scalar_small / eval_batched_small.max(1e-12),
        "small_n": n / 10,
    });
    let coordinator = json!({
        "epsilon": epsilon,
        "chosen_n_batched": out_batched.sample_size,
        "chosen_n_scalar": out_scalar.sample_size,
        "chosen_n_unchanged": out_batched.sample_size == out_scalar.sample_size,
        "initial_epsilon_batched": out_batched.initial_epsilon,
        "initial_epsilon_scalar": out_scalar.initial_epsilon,
    });
    let doc = json!({
        "bench": "training",
        "reps": reps,
        "seed": seed,
        "threads": blinkml_data::parallel::max_threads(),
        "shape": shape,
        "logistic_dense": pair_json(&logistic),
        "maxent_sparse": pair_json(&maxent),
        "single_eval_logistic": single_eval,
        "coordinator": coordinator,
    });
    let path = blinkml_bench::report::write_baseline("BENCH_training.json", &doc);
    println!("\nwrote {}", path.display());
}

fn max_abs_diff(a: &[f64], b: &[f64]) -> f64 {
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y).abs())
        .fold(0.0f64, f64::max)
}

fn pair_json(pair: &PairResult) -> serde_json::Value {
    json!({
        "label": pair.label,
        "scalar_ms": pair.scalar.as_secs_f64() * 1e3,
        "batched_ms": pair.batched.as_secs_f64() * 1e3,
        "speedup": pair.speedup(),
        "theta_max_diff": pair.theta_max_diff,
        "iterations": pair.iterations,
    })
}
