//! Figure 6 / Table 5: requested vs actual model accuracy.
//!
//! For each combination and requested accuracy, repeats BlinkML training
//! and measures the *actual* accuracy of each approximate model against
//! a trained full model on the test set. The paper's guarantee requires
//! the 5th percentile of actual accuracies to clear the requested level.
//!
//! Usage:
//! `cargo run --release -p blinkml-bench --bin fig6_guarantees -- [scale=1.0] [reps=20] [n0=1000] [k=100] [seed=1] [combo=<label substr>]`

use blinkml_bench::{combos::ComboId, BenchArgs, Table};
use blinkml_prob::quantile::summary;

fn main() {
    let args = BenchArgs::parse(&["scale", "reps", "n0", "k", "seed", "combo"]);
    let scale = args.get_f64("scale", 1.0);
    let reps = args.get_usize("reps", 20);
    let n0 = args.get_usize("n0", 1_000);
    let k = args.get_usize("k", 100);
    let seed = args.get_u64("seed", 1);
    let filter = args.get_str("combo", "");

    println!(
        "# Figure 6 / Table 5 — accuracy guarantees (scale={scale}, reps={reps}, n0={n0}, k={k}, delta=0.05)"
    );
    for id in ComboId::paper_combos() {
        if !filter.is_empty() && !id.label().contains(&filter) {
            continue;
        }
        let mut combo = id.make(scale, seed);
        combo.train_full();
        let mut table = Table::new(
            format!("{} — requested vs actual accuracy", id.label()),
            &[
                "Requested",
                "Actual Mean",
                "5th Pct",
                "95th Pct",
                "Violations",
            ],
        );
        for &accuracy in id.accuracy_sweep() {
            let epsilon = 1.0 - accuracy;
            let actuals: Vec<f64> = (0..reps)
                .map(|rep| {
                    let run = combo.run_blinkml(
                        epsilon,
                        0.05,
                        id.effective_n0(n0),
                        k,
                        seed + 31 * rep as u64,
                    );
                    combo.actual_accuracy(&run.theta)
                })
                .collect();
            let (mean, p5, p95) = summary(&actuals, 0.05, 0.95);
            // The guarantee allows each run to violate with probability
            // δ = 0.05; report the realized violation count rather than
            // a pass/fail on the min (which flags ~1/3 of cells even
            // under perfect calibration at small rep counts).
            let violations = actuals.iter().filter(|&&a| a < accuracy - 1e-9).count();
            table.row(&[
                format!("{:.2}%", accuracy * 100.0),
                format!("{:.2}%", mean * 100.0),
                format!("{:.2}%", p5 * 100.0),
                format!("{:.2}%", p95 * 100.0),
                format!("{violations}/{reps}"),
            ]);
            blinkml_bench::report::append_result(
                "fig6_guarantees",
                &serde_json::json!({
                    "combo": id.label(),
                    "requested_accuracy": accuracy,
                    "actual_mean": mean,
                    "actual_p5": p5,
                    "actual_p95": p95,
                    "violations": violations,
                    "reps": reps,
                }),
            );
        }
        table.print();
    }
}
