//! Record the zero-copy sampling-layer baseline to
//! `results/BENCH_sampling.json`.
//!
//! Installs the counting global allocator and measures, for the
//! acceptance shape (dense logistic, N=200k / D=100, tight ε so the
//! final sample is a large fraction of N):
//!
//! * **bytes allocated per coordinator phase** — pool-matrix build,
//!   pilot sample/train, statistics, final sample/train — for the
//!   zero-copy index-view path against the materialized (example
//!   cloning) path,
//! * **end-to-end coordinator** wall-clock and allocation totals for
//!   both [`SamplingMode`]s, as an interleaved order-alternating pair
//!   (shared `paired_min_times` methodology),
//! * the **sampling-layer micro pair** — drawing and capturing the
//!   final sample (index view + gather vs clone + matrix rebuild) —
//!   the phase the zero-copy layer eliminates.
//!
//! Outcomes are bit-identical between the modes by construction; the
//! recorder asserts it (θ, ε₀, chosen n) and the smoke mode gates:
//! view-path allocations **strictly below** the materialized path, and
//! sampling-layer wall-clock at ≥ 1.0×.
//!
//! Usage:
//! `cargo run --release -p blinkml-bench --bin sampling_baseline -- \
//!  [mode=full|smoke] [n=200000] [dim=100] [epsilon=0.01] [n0=2000] \
//!  [holdout=2000] [reps=5] [seed=1]`

use blinkml_bench::alloc::{fmt_bytes, measure, AllocStats, CountingAllocator};
use blinkml_bench::{fmt_duration, paired_min_times, BenchArgs, Table};
use blinkml_core::models::LogisticRegressionSpec;
use blinkml_core::{
    compute_statistics_cached, BlinkMlConfig, Coordinator, ModelClassSpec, SamplingMode,
};
use blinkml_data::generators::synthetic_logistic;
use blinkml_data::{DatasetMatrix, DenseVec};
use blinkml_optim::OptimOptions;
use blinkml_prob::split_seed;
use serde_json::json;
use std::hint::black_box;

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

/// Per-phase allocation byte counts for one sampling path.
#[derive(Debug, Default, Clone, Copy)]
struct PhaseAllocs {
    pool_matrix: u64,
    pilot_sample: u64,
    pilot_train: u64,
    statistics: u64,
    final_sample: u64,
    final_train: u64,
}

impl PhaseAllocs {
    fn total(&self) -> u64 {
        self.pool_matrix
            + self.pilot_sample
            + self.pilot_train
            + self.statistics
            + self.final_sample
            + self.final_train
    }
}

fn main() {
    let args = BenchArgs::parse(&[
        "mode", "n", "dim", "epsilon", "n0", "holdout", "reps", "seed",
    ]);
    let mode = args.get_str("mode", "full");
    let smoke = mode == "smoke";
    assert!(
        smoke || mode == "full",
        "mode must be 'full' or 'smoke', got '{mode}'"
    );
    let (def_n, def_d, def_n0, def_hold, def_reps) = if smoke {
        (20_000, 50, 500, 800, 3)
    } else {
        (200_000, 100, 2_000, 2_000, 5)
    };
    let n = args.get_usize("n", def_n);
    let dim = args.get_usize("dim", def_d);
    let epsilon = args.get_f64("epsilon", if smoke { 0.02 } else { 0.01 });
    let n0 = args.get_usize("n0", def_n0);
    let holdout = args.get_usize("holdout", def_hold);
    let reps = args.get_usize("reps", def_reps);
    let seed = args.get_u64("seed", 1);

    let (data, _) = synthetic_logistic(n, dim, 2.0, seed);
    let split = data.split(holdout, 0, split_seed(seed, 100));
    let spec = LogisticRegressionSpec::new(1e-3);
    let specd: &dyn ModelClassSpec<DenseVec> = &spec;
    let opts = OptimOptions::default();
    let config = |sampling: SamplingMode| BlinkMlConfig {
        epsilon,
        delta: 0.05,
        initial_sample_size: n0,
        holdout_size: holdout,
        num_param_samples: 32,
        sampling,
        ..BlinkMlConfig::default()
    };

    // --- End-to-end coordinator: exactness + alloc totals + times. ---
    let run = |sampling: SamplingMode| {
        Coordinator::new(config(sampling))
            .train_with_holdout(&spec, &split.train, &split.holdout, seed)
            .expect("coordinator run")
    };
    let (out_view, alloc_view_run) = measure(|| run(SamplingMode::ZeroCopy));
    let (out_mat, alloc_mat_run) = measure(|| run(SamplingMode::Materialize));
    assert_eq!(
        out_view.sample_size, out_mat.sample_size,
        "zero-copy sampling changed the chosen n"
    );
    assert_eq!(
        out_view.initial_epsilon, out_mat.initial_epsilon,
        "zero-copy sampling changed ε₀"
    );
    assert_eq!(
        out_view.model.parameters(),
        out_mat.model.parameters(),
        "zero-copy sampling changed θ"
    );
    assert!(
        !out_view.used_initial_model,
        "ε = {epsilon} should force a final training (n = {} of N = {})",
        out_view.sample_size, out_view.full_data_size
    );
    let n_final = out_view.sample_size;

    let (t_mat, t_view) = paired_min_times(
        reps,
        || run(SamplingMode::Materialize),
        || run(SamplingMode::ZeroCopy),
    );

    // --- Per-phase allocation breakdown (deterministic, one pass). ---
    let cfg = config(SamplingMode::ZeroCopy);
    let mut view_phases = PhaseAllocs::default();
    let mut mat_phases = PhaseAllocs::default();

    // Zero-copy path: one pool matrix, index-view samples.
    let (pool, a) = measure(|| DatasetMatrix::from_dataset(&split.train));
    view_phases.pool_matrix = a.bytes;
    let (idx0, a) = measure(|| split.train.sample_view(n0, split_seed(seed, 0)));
    view_phases.pilot_sample = a.bytes;
    // The capture (gathered view or packed block, by footprint — the
    // coordinator's policy) is charged to the training phase, and the
    // statistics phase reuses it, exactly like `fit_sample` does.
    let ((m0_view, cap0), a) = measure(|| {
        let capture = pool.capture_sample(idx0.indices());
        let model = specd
            .train_with_matrix(&split.train, Some(&capture.view()), None, &opts)
            .expect("pilot train (view)");
        (model, capture)
    });
    view_phases.pilot_train = a.bytes;
    let (_stats, a) = measure(|| {
        compute_statistics_cached(
            cfg.statistics_method,
            cfg.spectral,
            specd,
            m0_view.parameters(),
            &split.train,
            Some(&cap0.view()),
        )
        .expect("statistics (view)")
    });
    view_phases.statistics = a.bytes;
    let (idxn, a) = measure(|| split.train.sample_view(n_final, split_seed(seed, 3)));
    view_phases.final_sample = a.bytes;
    let (mn_view, a) = measure(|| {
        let capture = pool.capture_sample(idxn.indices());
        specd
            .train_with_matrix(
                &split.train,
                Some(&capture.view()),
                Some(m0_view.parameters()),
                &opts,
            )
            .expect("final train (view)")
    });
    view_phases.final_train = a.bytes;

    // Materialized path: per-sample clones and matrix rebuilds. Like
    // the view replay above (and the real `fit_sample`), the sample's
    // matrix is built once inside the training phase and shared with
    // the statistics phase.
    let (d0, a) = measure(|| split.train.sample(n0, split_seed(seed, 0)));
    mat_phases.pilot_sample = a.bytes;
    let ((m0_mat, xm0), a) = measure(|| {
        let xm = DatasetMatrix::from_dataset(&d0);
        let model = specd
            .train_with_matrix(&d0, Some(&xm.view()), None, &opts)
            .expect("pilot train (materialized)");
        (model, xm)
    });
    mat_phases.pilot_train = a.bytes;
    let (_stats, a) = measure(|| {
        compute_statistics_cached(
            cfg.statistics_method,
            cfg.spectral,
            specd,
            m0_mat.parameters(),
            &d0,
            Some(&xm0.view()),
        )
        .expect("statistics (materialized)")
    });
    mat_phases.statistics = a.bytes;
    let (dn, a) = measure(|| split.train.sample(n_final, split_seed(seed, 3)));
    mat_phases.final_sample = a.bytes;
    let (mn_mat, a) = measure(|| {
        let xm = DatasetMatrix::from_dataset(&dn);
        specd
            .train_with_matrix(&dn, Some(&xm.view()), Some(m0_mat.parameters()), &opts)
            .expect("final train (materialized)")
    });
    mat_phases.final_train = a.bytes;
    assert_eq!(
        mn_view.parameters(),
        mn_mat.parameters(),
        "phase replay drifted between paths"
    );

    // --- Sampling-layer micro pair: draw + capture the final sample. ---
    let (t_capture_mat, t_capture_view) = paired_min_times(
        reps.max(5),
        || {
            let s = split.train.sample(n_final, split_seed(seed, 3));
            let xm = DatasetMatrix::from_dataset(&s);
            black_box(xm.len())
        },
        || {
            let v = split.train.sample_view(n_final, split_seed(seed, 3));
            let capture = pool.capture_sample(v.indices());
            black_box(capture.view().len())
        },
    );

    // --- Report. ---
    let mut table = Table::new(
        format!(
            "Alloc bytes per coordinator phase (n0={n0}, final n={n_final}, N={})",
            split.train.len()
        ),
        &["phase", "zero-copy", "materialized"],
    );
    let rows: [(&str, u64, u64); 7] = [
        (
            "pool matrix",
            view_phases.pool_matrix,
            mat_phases.pool_matrix,
        ),
        (
            "pilot sample",
            view_phases.pilot_sample,
            mat_phases.pilot_sample,
        ),
        (
            "pilot train",
            view_phases.pilot_train,
            mat_phases.pilot_train,
        ),
        ("statistics", view_phases.statistics, mat_phases.statistics),
        (
            "final sample",
            view_phases.final_sample,
            mat_phases.final_sample,
        ),
        (
            "final train",
            view_phases.final_train,
            mat_phases.final_train,
        ),
        ("total", view_phases.total(), mat_phases.total()),
    ];
    for (label, v, m) in rows {
        table.row(&[label.to_string(), fmt_bytes(v), fmt_bytes(m)]);
    }
    table.print();
    let sampling_speedup = t_capture_mat.as_secs_f64() / t_capture_view.as_secs_f64().max(1e-12);
    let coordinator_speedup = t_mat.as_secs_f64() / t_view.as_secs_f64().max(1e-12);
    println!(
        "\nsample capture (draw + design-matrix view) at n={n_final}: materialized {} vs \
         zero-copy {} ({sampling_speedup:.1}x)",
        fmt_duration(t_capture_mat),
        fmt_duration(t_capture_view),
    );
    println!(
        "end-to-end coordinator: materialized {} vs zero-copy {} ({coordinator_speedup:.2}x); \
         alloc {} vs {} ({:.2}x less)",
        fmt_duration(t_mat),
        fmt_duration(t_view),
        fmt_bytes(alloc_mat_run.bytes),
        fmt_bytes(alloc_view_run.bytes),
        alloc_mat_run.bytes as f64 / alloc_view_run.bytes.max(1) as f64,
    );

    // Deterministic gate: the zero-copy path must allocate strictly
    // fewer bytes than the materialized path, end to end and in the
    // sampling phases themselves.
    assert!(
        alloc_view_run.bytes < alloc_mat_run.bytes,
        "zero-copy coordinator allocated {} >= materialized {}",
        fmt_bytes(alloc_view_run.bytes),
        fmt_bytes(alloc_mat_run.bytes),
    );
    assert!(
        view_phases.pilot_sample + view_phases.final_sample
            < mat_phases.pilot_sample + mat_phases.final_sample,
        "index-view samples must allocate less than example clones"
    );

    if smoke {
        // Wall-clock gate on the phase the layer eliminates: drawing +
        // capturing a sample. The zero-copy side does O(n) index work
        // against the materialized side's O(n·d) clone, so ≥ 1.0x holds
        // with margin even on a noisy shared runner.
        assert!(
            sampling_speedup >= 1.0,
            "smoke gate: zero-copy sample capture slower than materialized \
             ({sampling_speedup:.2}x < 1.0x)"
        );
        println!("\nsmoke mode: skipping results/BENCH_sampling.json");
        return;
    }

    let phase_json = |p: &PhaseAllocs| {
        json!({
            "pool_matrix_bytes": p.pool_matrix,
            "pilot_sample_bytes": p.pilot_sample,
            "pilot_train_bytes": p.pilot_train,
            "statistics_bytes": p.statistics,
            "final_sample_bytes": p.final_sample,
            "final_train_bytes": p.final_train,
            "total_bytes": p.total(),
        })
    };
    let alloc_json = |a: &AllocStats| json!({ "bytes": a.bytes, "calls": a.calls });
    let shape = json!({
        "n": n,
        "dim": dim,
        "epsilon": epsilon,
        "n0": n0,
        "holdout": holdout,
    });
    let phases = json!({
        "zero_copy": phase_json(&view_phases),
        "materialized": phase_json(&mat_phases),
    });
    let coordinator = json!({
        "zero_copy_ms": t_view.as_secs_f64() * 1e3,
        "materialized_ms": t_mat.as_secs_f64() * 1e3,
        "speedup": coordinator_speedup,
        "zero_copy_alloc": alloc_json(&alloc_view_run),
        "materialized_alloc": alloc_json(&alloc_mat_run),
        "alloc_reduction": alloc_mat_run.bytes as f64 / alloc_view_run.bytes.max(1) as f64,
    });
    let sample_capture = json!({
        "zero_copy_ms": t_capture_view.as_secs_f64() * 1e3,
        "materialized_ms": t_capture_mat.as_secs_f64() * 1e3,
        "speedup": sampling_speedup,
    });
    let exactness = json!({
        "theta_bit_equal": true,
        "epsilon0_bit_equal": true,
        "chosen_n_equal": true,
    });
    let doc = json!({
        "bench": "sampling",
        "reps": reps,
        "seed": seed,
        "threads": blinkml_data::parallel::max_threads(),
        "shape": shape,
        "chosen_n": n_final,
        "phases": phases,
        "coordinator": coordinator,
        "sample_capture": sample_capture,
        "exactness": exactness,
    });
    let path = blinkml_bench::report::write_baseline("BENCH_sampling.json", &doc);
    println!("\nwrote {}", path.display());
}
