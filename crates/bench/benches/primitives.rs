//! Criterion microbenchmarks for the substrate primitives that every
//! experiment stresses: linear algebra kernels, factored sampling,
//! statistics computation, and the margin-cached diff engine.

use blinkml_core::diff_engine::{draw_pool, DiffEngine};
use blinkml_core::models::{LinearRegressionSpec, LogisticRegressionSpec, MaxEntSpec};
use blinkml_core::stats::{closed_form, inverse_gradients, observed_fisher};
use blinkml_core::ModelClassSpec;
use blinkml_data::generators::{mnist_like, power_like, synthetic_logistic};
use blinkml_linalg::{blas, SymmetricEigen, ThinSvd};
use blinkml_optim::OptimOptions;
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

use blinkml_linalg::testing::xorshift_matrix as random_matrix;

fn linalg_kernels(c: &mut Criterion) {
    let mut g = c.benchmark_group("linalg");
    g.sample_size(20);
    let a = random_matrix(128, 128, 1);
    let b = random_matrix(128, 128, 2);
    g.bench_function("gemm_128", |bench| {
        bench.iter(|| blas::gemm(black_box(&a), black_box(&b)).unwrap())
    });
    let tall = random_matrix(1_000, 64, 3);
    g.bench_function("syrk_t_1000x64", |bench| {
        bench.iter(|| blas::syrk_t(black_box(&tall)))
    });
    let mut sym = blas::syrk_t(&random_matrix(96, 96, 4));
    sym.add_diag(1.0);
    g.bench_function("eigen_sym_96", |bench| {
        bench.iter_batched(
            || sym.clone(),
            |m| SymmetricEigen::new(black_box(&m)).unwrap(),
            BatchSize::SmallInput,
        )
    });
    let rect = random_matrix(200, 60, 5);
    g.bench_function("thin_svd_200x60", |bench| {
        bench.iter(|| ThinSvd::new(black_box(&rect)).unwrap())
    });
    g.finish();
}

fn training(c: &mut Criterion) {
    let mut g = c.benchmark_group("training");
    g.sample_size(10);
    let (data, _) = synthetic_logistic(5_000, 20, 2.0, 7);
    let spec = LogisticRegressionSpec::new(1e-3);
    g.bench_function("logreg_n5000_d20", |bench| {
        bench.iter(|| {
            spec.train(black_box(&data), None, &OptimOptions::default())
                .unwrap()
        })
    });
    let mnist = mnist_like(3_000, 8);
    let me = MaxEntSpec::new(1e-3, 10);
    g.bench_function("maxent_n3000_d196_k10", |bench| {
        bench.iter(|| {
            me.train(black_box(&mnist), None, &OptimOptions::default())
                .unwrap()
        })
    });
    g.finish();
}

fn statistics_methods(c: &mut Criterion) {
    // The Table/Figure 9 comparison in microbench form.
    let mut g = c.benchmark_group("fig9_statistics");
    g.sample_size(10);
    let (data, _) = synthetic_logistic(3_000, 24, 2.0, 9);
    let spec = LogisticRegressionSpec::new(1e-3);
    let model = spec.train(&data, None, &OptimOptions::default()).unwrap();
    g.bench_function("observed_fisher_d24", |bench| {
        bench.iter(|| observed_fisher(&spec, black_box(model.parameters()), &data).unwrap())
    });
    g.bench_function("closed_form_d24", |bench| {
        bench.iter(|| closed_form(&spec, black_box(model.parameters()), &data).unwrap())
    });
    g.bench_function("inverse_gradients_d24", |bench| {
        bench.iter(|| inverse_gradients(&spec, black_box(model.parameters()), &data).unwrap())
    });
    g.finish();
}

fn sampling_and_diff(c: &mut Criterion) {
    let mut g = c.benchmark_group("sampling");
    g.sample_size(20);
    let data = power_like(8_000, 11);
    let spec = LinearRegressionSpec::new(1e-3);
    let sample = data.sample(1_000, 1);
    let model = spec.train(&sample, None, &OptimOptions::default()).unwrap();
    let stats = observed_fisher(&spec, model.parameters(), &sample).unwrap();
    g.bench_function("draw_pool_100_d115", |bench| {
        let mut seed = 0u64;
        bench.iter(|| {
            seed += 1;
            draw_pool(black_box(&stats), 100, seed)
        })
    });
    let pool = draw_pool(&stats, 100, 42);
    let holdout = data.sample(2_000, 2);
    let engine = DiffEngine::new(&spec, &holdout, model.parameters(), &pool, &pool);
    g.bench_function("sse_probe_k100_h2000", |bench| {
        // One binary-search probe of the Sample Size Estimator.
        bench.iter(|| {
            let mut hits = 0usize;
            for i in 0..100 {
                if engine.diff_two_stage(black_box(i), 0.02, 0.01) <= 0.05 {
                    hits += 1;
                }
            }
            hits
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    linalg_kernels,
    training,
    statistics_methods,
    sampling_and_diff
);
criterion_main!(benches);
