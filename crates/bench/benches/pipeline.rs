//! Pipeline benchmarks: sequential vs. batched/parallel estimator paths.
//!
//! Measures the pairs behind `results/BENCH_pipeline.json` (see the
//! `pipeline_baseline` binary, which records the same pairs to JSON):
//!
//! * blocked parallel GEMM vs. the sequential kernel,
//! * parallel `second_moment` (syrk) vs. the sequential pass,
//! * GEMM-based `DiffEngine` construction vs. per-example scoring,
//! * the end-to-end sample-size probe loop over a pooled engine.
//!
//! Set `BLINKML_BENCH_SMOKE=1` for a quick CI-sized run.

use blinkml_bench::seqref::{bench_matrix, bench_pool, second_moment_seq, NoBatch};
use blinkml_core::diff_engine::DiffEngine;
use blinkml_core::grads::Grads;
use blinkml_core::models::LinearRegressionSpec;
use blinkml_data::generators::synthetic_linear;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

/// Benchmark sizes: (holdout, features, pool draws, gemm dim).
fn sizes() -> (usize, usize, usize, usize) {
    if std::env::var_os("BLINKML_BENCH_SMOKE").is_some() {
        (4_000, 16, 16, 64)
    } else {
        (50_000, 100, 128, 256)
    }
}

fn gemm_kernels(c: &mut Criterion) {
    let (_, _, _, dim) = sizes();
    let mut g = c.benchmark_group("pipeline_gemm");
    g.sample_size(10);
    let a = bench_matrix(dim, dim, 1);
    let b = bench_matrix(dim, dim, 2);
    g.bench_function(format!("gemm_seq_{dim}"), |bench| {
        bench.iter(|| blinkml_linalg::blas::gemm(black_box(&a), black_box(&b)).unwrap())
    });
    g.bench_function(format!("gemm_par_{dim}"), |bench| {
        bench.iter(|| blinkml_linalg::blas::par_gemm(black_box(&a), black_box(&b)).unwrap())
    });
    g.finish();
}

fn second_moment(c: &mut Criterion) {
    let (h, d, _, _) = sizes();
    let mut g = c.benchmark_group("pipeline_second_moment");
    g.sample_size(10);
    let m = bench_matrix(h, d, 3);
    g.bench_function(format!("seq_{h}x{d}"), |bench| {
        bench.iter(|| second_moment_seq(black_box(&m)))
    });
    let grads = Grads::Dense(m.clone());
    g.bench_function(format!("par_{h}x{d}"), |bench| {
        bench.iter(|| black_box(&grads).second_moment())
    });
    g.finish();
}

fn diff_engine_build(c: &mut Criterion) {
    let (h, d, pool_k, _) = sizes();
    let mut g = c.benchmark_group("pipeline_diff_engine");
    g.sample_size(10);
    let (holdout, _) = synthetic_linear(h, d, 0.3, 4);
    let base = bench_pool(1, d + 1, 5).pop().unwrap();
    let pool = bench_pool(pool_k, d + 1, 6);
    let spec = LinearRegressionSpec::new(1e-3);
    let seq_spec = NoBatch(LinearRegressionSpec::new(1e-3));
    g.bench_function(format!("build_per_example_h{h}_d{d}_k{pool_k}"), |bench| {
        bench.iter(|| DiffEngine::new(black_box(&seq_spec), &holdout, &base, &pool, &pool))
    });
    g.bench_function(format!("build_gemm_h{h}_d{d}_k{pool_k}"), |bench| {
        bench.iter(|| DiffEngine::new(black_box(&spec), &holdout, &base, &pool, &pool))
    });
    g.finish();
}

fn probe_loop(c: &mut Criterion) {
    let (h, d, pool_k, _) = sizes();
    let mut g = c.benchmark_group("pipeline_probe");
    g.sample_size(10);
    let (holdout, _) = synthetic_linear(h, d, 0.3, 7);
    let base = bench_pool(1, d + 1, 8).pop().unwrap();
    let pool = bench_pool(pool_k, d + 1, 9);
    let spec = LinearRegressionSpec::new(1e-3);
    let engine = DiffEngine::new(&spec, &holdout, &base, &pool, &pool);
    // One binary-search probe of the Sample Size Estimator: sequential
    // loop vs the estimator's actual draw-parallel path.
    g.bench_function(format!("sse_probe_seq_k{pool_k}_h{h}"), |bench| {
        bench.iter(|| {
            let mut hits = 0usize;
            for i in 0..pool_k {
                if engine.diff_two_stage(black_box(i), 0.02, 0.01) <= 0.05 {
                    hits += 1;
                }
            }
            hits
        })
    });
    g.bench_function(format!("sse_probe_par_k{pool_k}_h{h}"), |bench| {
        bench.iter(|| {
            blinkml_data::parallel::par_ranges_with(pool_k, 1, |range| {
                range
                    .filter(|&i| engine.diff_two_stage(black_box(i), 0.02, 0.01) <= 0.05)
                    .count()
            })
            .into_iter()
            .sum::<usize>()
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    gemm_kernels,
    second_moment,
    diff_engine_build,
    probe_loop
);
criterion_main!(benches);
