//! Spectral-engine benchmarks: dense vs truncated randomized statistics.
//!
//! Measures the pairs behind `results/BENCH_spectral.json` (see the
//! `spectral_baseline` binary, which records the same pairs to JSON):
//!
//! * the ObservedFisher statistics phase — full `tred2`/`tql2` over the
//!   materialized second moment vs the matrix-free randomized solver,
//! * the raw eigensolvers on an explicit symmetric matrix,
//! * batched vs per-draw pool sampling through the covariance factor.
//!
//! Set `BLINKML_BENCH_SMOKE=1` for a quick CI-sized run.

use blinkml_core::models::LinearRegressionSpec;
use blinkml_core::stats::{observed_fisher, observed_fisher_spectral};
use blinkml_core::{ModelClassSpec, SpectralMethod};
use blinkml_data::generators::synthetic_linear_decay;
use blinkml_linalg::spectral::{randomized_eigen, DenseSymmetricOp};
use blinkml_linalg::SymmetricEigen;
use blinkml_optim::OptimOptions;
use blinkml_prob::{rng_from_seed, MvnSampler};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

/// Benchmark sizes: (examples, features, rank, pool draws).
fn sizes() -> (usize, usize, usize, usize) {
    if std::env::var_os("BLINKML_BENCH_SMOKE").is_some() {
        (400, 48, 12, 16)
    } else {
        (2_000, 400, 48, 128)
    }
}

fn randomized_knobs(rank: usize) -> SpectralMethod {
    SpectralMethod::Randomized {
        rank,
        oversample: 16,
        power_iters: 1,
        tol: 1e-6,
    }
}

fn statistics_phase(c: &mut Criterion) {
    let (n, d, rank, _) = sizes();
    let mut g = c.benchmark_group("spectral_statistics");
    g.sample_size(10);
    let (data, _) = synthetic_linear_decay(n, d, 0.85, 0.5, 1);
    let spec = LinearRegressionSpec::new(1e-2);
    let model = spec.train(&data, None, &OptimOptions::default()).unwrap();
    g.bench_function(format!("observed_fisher_dense_n{n}_d{d}"), |bench| {
        bench.iter(|| observed_fisher(black_box(&spec), model.parameters(), &data).unwrap())
    });
    g.bench_function(
        format!("observed_fisher_randomized_n{n}_d{d}_r{rank}"),
        |bench| {
            bench.iter(|| {
                observed_fisher_spectral(
                    black_box(&spec),
                    model.parameters(),
                    &data,
                    randomized_knobs(rank),
                )
                .unwrap()
            })
        },
    );
    g.finish();
}

fn eigensolvers(c: &mut Criterion) {
    let (_, d, rank, _) = sizes();
    let mut g = c.benchmark_group("spectral_eigensolver");
    g.sample_size(10);
    // A decaying PSD matrix shaped like a regularized second moment
    // (scale floored like the data generator, so the spectrum stays
    // inside the dynamic range tql2 tolerates at any d).
    let probe = blinkml_linalg::testing::xorshift_matrix(2 * d, d, 2);
    let mut scaled = probe.clone();
    for i in 0..scaled.rows() {
        for (j, v) in scaled.row_mut(i).iter_mut().enumerate() {
            *v *= 0.85f64.powi(j as i32).max(1e-4);
        }
    }
    let a = blinkml_linalg::blas::syrk_t(&scaled);
    g.bench_function(format!("dense_tql2_d{d}"), |bench| {
        bench.iter(|| SymmetricEigen::new(black_box(&a)).unwrap())
    });
    g.bench_function(format!("randomized_d{d}_r{rank}"), |bench| {
        bench.iter(|| {
            randomized_eigen(&DenseSymmetricOp::new(black_box(&a)), rank, 16, 1, 1e-6).unwrap()
        })
    });
    g.finish();
}

fn pool_drawing(c: &mut Criterion) {
    let (n, d, _, pool_k) = sizes();
    let mut g = c.benchmark_group("spectral_pool");
    g.sample_size(10);
    let (data, _) = synthetic_linear_decay(n, d, 0.85, 0.5, 3);
    let spec = LinearRegressionSpec::new(1e-2);
    let model = spec.train(&data, None, &OptimOptions::default()).unwrap();
    let stats = observed_fisher(&spec, model.parameters(), &data).unwrap();
    g.bench_function(format!("pool_per_draw_k{pool_k}_d{d}"), |bench| {
        bench.iter(|| {
            MvnSampler::new(&stats).sample_pool_seq(&mut rng_from_seed(7), black_box(pool_k))
        })
    });
    g.bench_function(format!("pool_batched_k{pool_k}_d{d}"), |bench| {
        bench.iter(|| MvnSampler::new(&stats).sample_pool(&mut rng_from_seed(7), black_box(pool_k)))
    });
    g.finish();
}

criterion_group!(benches, statistics_phase, eigensolvers, pool_drawing);
criterion_main!(benches);
