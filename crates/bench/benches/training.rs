//! Batched-training-engine benchmarks: scalar per-example objective vs
//! the fused design-matrix-view engine.
//!
//! Measures the pairs behind `results/BENCH_training.json` (see the
//! `training_baseline` binary, which records the same pairs to JSON):
//!
//! * end-to-end `train()` — scalar walk vs batched engine,
//! * one objective evaluation — `objective` vs `value_grad_batched`,
//! * the `grads` statistics pass — per-example vs cached-matrix.
//!
//! Set `BLINKML_BENCH_SMOKE=1` for a quick CI-sized run.

use blinkml_core::models::LogisticRegressionSpec;
use blinkml_core::testing::ScalarTrain;
use blinkml_core::ModelClassSpec;
use blinkml_data::generators::synthetic_logistic;
use blinkml_data::{DatasetMatrix, DenseVec, TrainScratch};

/// Disambiguate the feature type for direct trait-method calls.
type Spec = LogisticRegressionSpec;
fn as_dense(spec: &Spec) -> &dyn ModelClassSpec<DenseVec> {
    spec
}
use blinkml_optim::OptimOptions;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

/// Benchmark sizes: (examples, features).
fn sizes() -> (usize, usize) {
    if std::env::var_os("BLINKML_BENCH_SMOKE").is_some() {
        (4_000, 32)
    } else {
        (50_000, 100)
    }
}

fn end_to_end_train(c: &mut Criterion) {
    let (n, d) = sizes();
    let mut g = c.benchmark_group("training_train");
    g.sample_size(10);
    let (data, _) = synthetic_logistic(n, d, 2.0, 1);
    let opts = OptimOptions::default();
    let batched = LogisticRegressionSpec::new(1e-3);
    let scalar = ScalarTrain(LogisticRegressionSpec::new(1e-3));
    g.bench_function(format!("scalar_n{n}_d{d}"), |bench| {
        bench.iter(|| scalar.train(black_box(&data), None, &opts).unwrap())
    });
    g.bench_function(format!("batched_n{n}_d{d}"), |bench| {
        bench.iter(|| batched.train(black_box(&data), None, &opts).unwrap())
    });
    g.finish();
}

fn single_eval(c: &mut Criterion) {
    let (n, d) = sizes();
    let mut g = c.benchmark_group("training_eval");
    g.sample_size(20);
    let (data, _) = synthetic_logistic(n, d, 2.0, 2);
    let spec = LogisticRegressionSpec::new(1e-3);
    let theta: Vec<f64> = (0..d).map(|i| (i as f64 * 0.17).sin() * 0.2).collect();
    g.bench_function(format!("objective_scalar_n{n}_d{d}"), |bench| {
        bench.iter(|| as_dense(&spec).objective(black_box(&theta), &data))
    });
    let xm = DatasetMatrix::from_dataset(&data);
    let mut scratch = TrainScratch::new();
    let mut grad = vec![0.0; d];
    g.bench_function(format!("value_grad_batched_n{n}_d{d}"), |bench| {
        bench.iter(|| {
            as_dense(&spec).value_grad_batched(
                black_box(&theta),
                &xm.view(),
                &mut scratch,
                &mut grad,
            )
        })
    });
    g.finish();
}

fn grads_pass(c: &mut Criterion) {
    let (n, d) = sizes();
    let (n, d) = (n / 5, d);
    let mut g = c.benchmark_group("training_grads");
    g.sample_size(10);
    let (data, _) = synthetic_logistic(n, d, 2.0, 3);
    let spec = LogisticRegressionSpec::new(1e-3);
    let theta: Vec<f64> = (0..d).map(|i| (i as f64 * 0.29).cos() * 0.2).collect();
    g.bench_function(format!("grads_scalar_n{n}_d{d}"), |bench| {
        bench.iter(|| as_dense(&spec).grads(black_box(&theta), &data))
    });
    let xm = DatasetMatrix::from_dataset(&data);
    g.bench_function(format!("grads_cached_n{n}_d{d}"), |bench| {
        bench.iter(|| as_dense(&spec).grads_cached(black_box(&theta), &data, Some(&xm.view())))
    });
    g.finish();
}

criterion_group!(benches, end_to_end_train, single_eval, grads_pass);
criterion_main!(benches);
