//! Criterion benchmarks mirroring each paper experiment at reduced
//! scale — one group per table/figure, so `cargo bench` exercises every
//! reproduced pipeline end-to-end. The full-resolution tables come from
//! the `fig*` binaries (see DESIGN.md §4); these groups track the cost
//! of each pipeline over time.

use blinkml_bench::combos::ComboId;
use blinkml_core::baselines::{IncEstimator, SampleSizePolicy};
use blinkml_core::models::LogisticRegressionSpec;
use blinkml_core::stats::observed_fisher;
use blinkml_core::{BlinkMlConfig, ModelClassSpec, SampleSizeEstimator};
use blinkml_data::generators::criteo_like;
use blinkml_optim::OptimOptions;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

/// Scale factor applied to the combo datasets (keeps each iteration in
/// the tens-of-milliseconds range).
const BENCH_SCALE: f64 = 0.1;

fn fig5_table4_speedup(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig5_table4_speedup");
    g.sample_size(10);
    // One representative combo per model family.
    for id in [ComboId::LrHiggs, ComboId::LinGas] {
        let combo = id.make(BENCH_SCALE, 5);
        g.bench_function(format!("blinkml_95pct/{}", id.label()), |bench| {
            let mut seed = 0u64;
            bench.iter(|| {
                seed += 1;
                combo.run_blinkml(black_box(0.05), 0.05, 300, 32, seed)
            })
        });
    }
    g.finish();
}

fn fig6_table5_guarantees(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig6_table5_guarantees");
    g.sample_size(10);
    let mut combo = ComboId::LrHiggs.make(BENCH_SCALE, 6);
    combo.train_full();
    g.bench_function("run_and_measure_actual_accuracy", |bench| {
        let mut seed = 0u64;
        bench.iter(|| {
            seed += 1;
            let run = combo.run_blinkml(0.1, 0.05, 300, 32, seed);
            combo.actual_accuracy(black_box(&run.theta))
        })
    });
    g.finish();
}

fn fig7_tables67_baselines(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig7_tables67_baselines");
    g.sample_size(10);
    let combo = ComboId::LrHiggs.make(BENCH_SCALE, 7);
    for policy in ["fixed", "relative"] {
        g.bench_function(policy, |bench| {
            let mut seed = 0u64;
            bench.iter(|| {
                seed += 1;
                combo.run_policy(black_box(policy), 0.1, 0.05, 16, seed)
            })
        });
    }
    // IncEstimator at a small growth base (trains several models).
    let (data, _) = blinkml_data::generators::synthetic_logistic(8_000, 10, 2.0, 8);
    let split = data.split(500, 0, 1);
    let spec = LogisticRegressionSpec::new(1e-3);
    let config = BlinkMlConfig {
        epsilon: 0.1,
        num_param_samples: 32,
        ..BlinkMlConfig::default()
    };
    g.bench_function("inc_estimator", |bench| {
        let mut seed = 0u64;
        bench.iter(|| {
            seed += 1;
            IncEstimator {
                base: 500,
                ..IncEstimator::default()
            }
            .run(&spec, &split.train, &split.holdout, &config, seed)
            .unwrap()
        })
    });
    g.finish();
}

fn fig8_table8_dimension(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig8_table8_dimension");
    g.sample_size(10);
    for d in [200usize, 2_000] {
        let data = criteo_like(12_000, d, 9);
        let split = data.split(800, 0, 2);
        let spec = LogisticRegressionSpec::new(1e-3);
        g.bench_function(format!("blinkml_pipeline_d{d}"), |bench| {
            let mut seed = 0u64;
            bench.iter(|| {
                seed += 1;
                let sample = split.train.sample(500, seed);
                let m = spec.train(&sample, None, &OptimOptions::default()).unwrap();
                observed_fisher(&spec, black_box(m.parameters()), &sample).unwrap()
            })
        });
    }
    g.finish();
}

fn fig11_sample_size_search(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig11_sample_size_search");
    g.sample_size(10);
    let data = criteo_like(30_000, 1_000, 11);
    let split = data.split(1_000, 0, 3);
    let spec = LogisticRegressionSpec::new(1e-3);
    let sample = split.train.sample(800, 4);
    let model = spec.train(&sample, None, &OptimOptions::default()).unwrap();
    let stats = observed_fisher(&spec, model.parameters(), &sample).unwrap();
    g.bench_function("binary_search_k64", |bench| {
        let mut seed = 0u64;
        bench.iter(|| {
            seed += 1;
            SampleSizeEstimator::new(64).estimate(
                &spec,
                black_box(model.parameters()),
                &stats,
                800,
                split.train.len(),
                &split.holdout,
                0.05,
                0.05,
                seed,
            )
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    fig5_table4_speedup,
    fig6_table5_guarantees,
    fig7_tables67_baselines,
    fig8_table8_dimension,
    fig11_sample_size_search
);
criterion_main!(benches);
