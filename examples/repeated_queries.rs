//! Repeated training queries through one amortized Session.
//!
//! The multi-query serving scenario: one training pool, many `(ε, δ)`
//! contracts. A `Session` builds the pool-resident design matrix once
//! and trains the pilot model once per seed; each query then only pays
//! for the accuracy estimate, the sample-size search, and (for tight
//! contracts) the final training. Results are bit-identical to fresh
//! coordinator runs — the sweep below prints the per-query time next to
//! what a cold coordinator spends on the same contract.
//!
//! Run with: `cargo run --release --example repeated_queries`

use blinkml::prelude::*;
use std::time::Instant;

fn main() {
    let data = higgs_like(120_000, 28, 7);
    let split = data.split(3_000, 0, 11);
    let spec = LogisticRegressionSpec::new(1e-3);
    let config = BlinkMlConfig {
        initial_sample_size: 2_000,
        holdout_size: 3_000,
        ..BlinkMlConfig::default()
    };

    let t = Instant::now();
    let session = Session::new(config.clone(), &spec, &split.train, &split.holdout)
        .expect("session construction");
    println!(
        "session opened over N = {} in {:.0} ms (pool matrix built once)\n",
        session.pool_size(),
        t.elapsed().as_secs_f64() * 1e3
    );

    println!(
        "{:>8}  {:>9}  {:>10}  {:>12}  {:>12}",
        "ε", "chosen n", "ε̂", "session", "cold run"
    );
    for epsilon in [0.20, 0.10, 0.05, 0.02, 0.01] {
        let t = Instant::now();
        let outcome = session.train(epsilon, 0.05, 42).expect("session query");
        let session_ms = t.elapsed().as_secs_f64() * 1e3;

        // The same contract through a fresh coordinator, for comparison:
        // same bits, but the pool matrix and the pilot are paid again.
        let mut cold_cfg = config.clone();
        cold_cfg.epsilon = epsilon;
        let t = Instant::now();
        let cold = Coordinator::new(cold_cfg)
            .train_with_holdout(&spec, &split.train, &split.holdout, 42)
            .expect("cold run");
        let cold_ms = t.elapsed().as_secs_f64() * 1e3;
        assert_eq!(outcome.model.parameters(), cold.model.parameters());
        assert_eq!(outcome.sample_size, cold.sample_size);

        println!(
            "{epsilon:>8.2}  {:>9}  {:>10.4}  {:>9.0} ms  {:>9.0} ms",
            outcome.sample_size, outcome.estimated_epsilon, session_ms, cold_ms
        );
    }
    println!(
        "\n{} pilot trained for the whole sweep (cached per seed); every row is\n\
         bit-identical to its cold coordinator run.",
        session.cached_pilots()
    );
}
