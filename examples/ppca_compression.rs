//! Approximate PPCA: extract principal factors from a sample with a
//! cosine-similarity guarantee against the full-data factors.
//!
//! Run with: `cargo run --release --example ppca_compression`

use blinkml::core::models::ppca::align_ppca_parameters;
use blinkml::prelude::*;

fn main() {
    // Image-like data: 60K rows of 196 pixels.
    let data = mnist_like(60_000, 21);
    let spec = PpcaSpec::new(10);

    // Contract: the sampled factors must have cosine similarity ≥ 0.995
    // with the full-data factors (ε = 0.005), with 95% confidence.
    let config = BlinkMlConfig {
        epsilon: 0.005,
        delta: 0.05,
        initial_sample_size: 500,
        ..BlinkMlConfig::default()
    };
    let outcome = Coordinator::new(config)
        .train(&spec, &data, 13)
        .expect("training failed");

    println!(
        "PPCA factors extracted from {} of {} rows ({:.2}%)",
        outcome.sample_size,
        outcome.full_data_size,
        100.0 * outcome.sample_size as f64 / outcome.full_data_size as f64
    );
    println!("initial ε₀ = {:.5}", outcome.initial_epsilon);

    // Compare against the full-data factors (expensive path, for demo).
    let split = data.split(100, 0, 1);
    let full = spec
        .train(&split.train, None, &Default::default())
        .expect("full training failed");
    let d = data.dim();
    let aligned = align_ppca_parameters(full.parameters(), outcome.model.parameters(), d, 10);
    let v = spec.diff(full.parameters(), &aligned, &split.holdout);
    println!(
        "1 − cosine(approx factors, full factors) = {:.6} (guaranteed ≤ 0.005 w.p. 0.95)",
        v
    );

    // The point of PPCA: a 196-dim covariance summarized by 10 factors.
    let sigma2 = outcome.model.parameters()[d * 10];
    println!("estimated residual noise σ² = {sigma2:.4}");
}
