//! Hyperparameter search with approximate models (paper §5.7).
//!
//! Random search over the L2 coefficient: each candidate is evaluated
//! with a fast 95%-accurate BlinkML model instead of a full training
//! run, so far more of the search space is covered per unit time.
//!
//! Run with: `cargo run --release --example hyperparameter_search`

use blinkml::prelude::*;
use std::time::Instant;

fn main() {
    let data = higgs_like(80_000, 28, 3);
    let split = data.split(2_000, 3_000, 9);
    let betas = [1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 0.5, 1.0, 5.0];

    println!(
        "searching {} regularization candidates with BlinkML@95%\n",
        betas.len()
    );
    let start = Instant::now();
    let mut best: Option<(f64, f64)> = None; // (beta, accuracy)
    for (i, &beta) in betas.iter().enumerate() {
        let spec = LogisticRegressionSpec::new(beta);
        let config = BlinkMlConfig {
            epsilon: 0.05,
            initial_sample_size: 1_000,
            ..BlinkMlConfig::default()
        };
        let outcome = Coordinator::new(config)
            .train_with_holdout(&spec, &split.train, &split.holdout, 100 + i as u64)
            .expect("training failed");
        let test_acc = 1.0 - spec.generalization_error(outcome.model.parameters(), &split.test);
        println!(
            "β = {beta:>8.0e}: test accuracy {:.2}% (n = {}, {:.0} ms)",
            test_acc * 100.0,
            outcome.sample_size,
            outcome.phases.total().as_secs_f64() * 1e3,
        );
        if best.is_none_or(|(_, acc)| test_acc > acc) {
            best = Some((beta, test_acc));
        }
    }
    let (beta, acc) = best.expect("nonempty sweep");
    println!(
        "\nbest β = {beta:.0e} at {:.2}% test accuracy; whole search took {:.2} s",
        acc * 100.0,
        start.elapsed().as_secs_f64()
    );
    println!("(a single full training on this dataset costs more than the entire sweep)");
}
