//! Quickstart: train a 95%-accurate approximate model in one call.
//!
//! Mirrors the paper's Figure 1: instead of training on all N rows, ask
//! BlinkML for a model that agrees with the full model on ≥ 95% of
//! predictions, with 95% confidence — and get it from a small sample.
//!
//! Run with: `cargo run --release --example quickstart`

use blinkml::prelude::*;

fn main() {
    // A synthetic particle-physics dataset standing in for the paper's
    // HIGGS workload: 150K rows, 28 dense features.
    println!("generating data...");
    let data = higgs_like(150_000, 28, 42);
    println!("dataset: {} rows, {} features", data.len(), data.dim());

    // The approximation contract: ε = 0.05 (95% accuracy), δ = 0.05.
    let config = BlinkMlConfig {
        epsilon: 0.05,
        delta: 0.05,
        initial_sample_size: 1_000,
        ..BlinkMlConfig::default()
    };

    let spec = LogisticRegressionSpec::new(1e-3);
    let outcome = Coordinator::new(config)
        .train(&spec, &data, 7)
        .expect("training failed");

    println!(
        "\nBlinkML trained on {} of {} rows ({:.2}% of the data)",
        outcome.sample_size,
        outcome.full_data_size,
        100.0 * outcome.sample_size as f64 / outcome.full_data_size as f64
    );
    println!(
        "  initial model ε₀ = {:.4} (contract ε = 0.05)",
        outcome.initial_epsilon
    );
    println!(
        "  initial-model-only: {} | search probes: {}",
        outcome.used_initial_model, outcome.search_probes
    );
    println!(
        "  phases: init {:?} | stats {:?} | search {:?} | final {:?}",
        outcome.phases.initial_training,
        outcome.phases.statistics,
        outcome.phases.sample_size_search,
        outcome.phases.final_training,
    );

    // Verify against an actually trained full model (the expensive thing
    // BlinkML exists to avoid — done here only to demonstrate the
    // guarantee).
    println!("\ntraining the full model for comparison (the slow path)...");
    let split = data.split(2_000, 0, 1);
    let full = spec
        .train(&split.train, None, &Default::default())
        .expect("full training failed");
    let v = spec.diff(
        outcome.model.parameters(),
        full.parameters(),
        &split.holdout,
    );
    println!(
        "prediction difference vs full model: {:.4} (guaranteed ≤ 0.05 w.p. 0.95)",
        v
    );
}
