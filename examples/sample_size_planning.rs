//! Error–computation trade-off planning (paper §4): estimate, *without
//! training anything beyond one initial model*, how large a sample each
//! accuracy level would need — then decide what to pay for.
//!
//! Run with: `cargo run --release --example sample_size_planning`

use blinkml::core::stats::observed_fisher;
use blinkml::prelude::*;

fn main() {
    let data = gas_like(200_000, 11);
    let split = data.split(2_000, 0, 4);
    let spec = LinearRegressionSpec::new(1e-3);

    // One initial model on n₀ = 1 000 rows powers every estimate below.
    let n0 = 1_000;
    let d0 = split.train.sample(n0, 5);
    let m0 = spec
        .train(&d0, None, &Default::default())
        .expect("initial training failed");
    let stats = observed_fisher(&spec, m0.parameters(), &d0).expect("statistics failed");

    println!(
        "planning from one model trained on {n0} of {} rows:\n",
        split.train.len()
    );
    println!(
        "{:>12} {:>14} {:>10}",
        "accuracy", "est. sample n", "% of N"
    );
    let sse = SampleSizeEstimator::new(100);
    for accuracy in [0.80, 0.90, 0.95, 0.98, 0.99, 0.995] {
        let est = sse.estimate(
            &spec,
            m0.parameters(),
            &stats,
            n0,
            split.train.len(),
            &split.holdout,
            1.0 - accuracy,
            0.05,
            6,
        );
        println!(
            "{:>11.1}% {:>14} {:>9.2}%",
            accuracy * 100.0,
            est.n,
            100.0 * est.n as f64 / split.train.len() as f64
        );
    }
    println!("\nno additional model was trained to produce this table.");
}
